module D = Repro_dbt
module T = Repro_tcg
module Fi = Repro_faultinject.Faultinject
module Snapshot = Repro_snapshot.Snapshot
module Stats = Repro_x86.Stats
module Trace = Repro_observe.Trace
module Jsonx = Repro_observe.Jsonx
module Ruleset = Repro_rules.Ruleset
module Histo = Repro_perfscope.Histo

type config = {
  machines : int;
  min_healthy : int;
      (** shed new requests when fewer machines are serving *)
  policy : Supervisor.policy;
}

type disposition =
  | Shed  (** admission control refused the request *)
  | Done of { machine : int; result : Supervisor.outcome }

type t = {
  config : config;
  supervisors : Supervisor.t array;
  plan : Fi.Plan.t option;
  reference : Supervisor.reference;
  trace : Trace.t;  (* the fleet's own ring (request-counter clock) *)
  known_quarantined : (int, unit) Hashtbl.t;
  mutable boot_depot : int * int;
      (* (installed, pending) depot coverage of the boot machine the
         warm base was captured from; (0, 0) on a cold boot *)
  mutable cursor : int;
  mutable offered : int;
  mutable served_ok : int;
  mutable timed_out : int;
  mutable shed : int;
  mutable failed : int;
  mutable breaker_trips : int;
  mutable final_checks : bool option array option;
}

let emit t ?(a = -1) ?b name =
  Trace.emit t.trace ?a:(if a >= 0 then Some a else None) ?b Trace.Fleet name

(* The fault-free ground truth every served result is verified
   against: a pristine machine (same shape, faults never armed) run
   once from the warm base to completion. *)
let compute_reference ~policy base =
  let m =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib base)
      ?inject:(D.System.snapshot_injector base)
      ~shadow_depth:policy.Supervisor.shadow_depth
      ~quarantine_threshold:policy.Supervisor.quarantine_threshold
      (D.System.snapshot_mode base)
  in
  D.System.restore m base;
  (match m.D.System.rt.T.Runtime.inject with
  | Some inj -> List.iter (fun s -> Fi.set_rate inj s 0.) Fi.all_sites
  | None -> ());
  let stats = D.System.stats m in
  let insns0 = stats.Stats.guest_insns in
  let res =
    D.System.run ~deadline:(insns0 + policy.Supervisor.deadline) m
  in
  match res.T.Engine.reason with
  | `Halted code ->
    {
      Supervisor.r_code = code;
      r_uart_digest = Digest.to_hex (Digest.string (D.System.uart_output m));
      r_insns = stats.Stats.guest_insns - insns0;
    }
  | `Deadline ->
    invalid_arg
      "Fleet.create: the fault-free reference run missed the deadline — \
       raise policy.deadline above the workload's length"
  | `Livelock _ | `Insn_limit ->
    invalid_arg "Fleet.create: the fault-free reference run failed"

let create ?plan ?trace ~config base =
  if config.machines <= 0 then invalid_arg "Fleet.create: machines <= 0";
  if config.min_healthy < 0 || config.min_healthy > config.machines then
    invalid_arg "Fleet.create: min_healthy outside [0, machines]";
  (match plan with
  | Some p when Fi.Plan.machines p <> config.machines ->
    invalid_arg "Fleet.create: plan sized for a different fleet"
  | _ -> ());
  let reference = compute_reference ~policy:config.policy base in
  (* the fleet always keeps its own event ring (dispatch, breaker and
     assignment events) so telemetry export never changes what was
     recorded; [?trace] lets a caller supply the ring it will export *)
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let supervisors =
    Array.init config.machines (fun id ->
        Supervisor.create ?plan ~trace ~id ~policy:config.policy base)
  in
  let t =
    {
    config;
    supervisors;
    plan;
    reference;
    trace;
    known_quarantined = Hashtbl.create 16;
      boot_depot = (0, 0);
    cursor = 0;
    offered = 0;
    served_ok = 0;
    timed_out = 0;
    shed = 0;
    failed = 0;
      breaker_trips = 0;
      final_checks = None;
    }
  in
  (* the fleet's event clock is the request counter: a drill timeline
     is indexed by offered requests, not by any one machine's insn
     clock (the machines rewind theirs on every restore) *)
  Trace.set_clock trace (fun () -> t.offered);
  t

let reference t = t.reference
let machines t = t.config.machines
let supervisor t m = t.supervisors.(m)
let trace t = t.trace
(* The fleet-wide histogram is derived, not kept: Supervisor.serve
   already records every Served/Timed_out latency in its machine's
   histogram, and bucket-wise merge is associative and commutative —
   one recording site, one merge path. *)
let latency t =
  let into = Histo.create () in
  Array.iter (fun s -> Histo.merge ~into (Supervisor.latency s)) t.supervisors;
  into
let note_boot_depot t ~installed ~pending = t.boot_depot <- (installed, pending)

let serving_count t =
  Array.fold_left
    (fun n s -> if Health.serving (Supervisor.health s) then n + 1 else n)
    0 t.supervisors

let alive_count t =
  Array.fold_left
    (fun n s -> if Health.alive (Supervisor.health s) then n + 1 else n)
    0 t.supervisors

(* Round-robin over the machines currently willing to serve. *)
let pick_serving t =
  let n = Array.length t.supervisors in
  let rec scan tried =
    if tried >= n then None
    else
      let i = (t.cursor + tried) mod n in
      if Health.serving (Supervisor.health t.supervisors.(i)) then begin
        t.cursor <- (i + 1) mod n;
        Some i
      end
      else scan (tried + 1)
  in
  scan 0

(* Fleet-wide circuit breaker: a rule quarantined on any machine is
   demoted on every other machine before it can misfire there too.
   Quarantine state only changes inside a machine's own serve, so
   diffing the machine that just served catches every new demotion. *)
let breaker_sweep t served_by =
  match (Supervisor.machine t.supervisors.(served_by)).D.System.ruleset with
  | None -> ()
  | Some rs ->
    List.iter
      (fun id ->
        if not (Hashtbl.mem t.known_quarantined id) then begin
          Hashtbl.add t.known_quarantined id ();
          t.breaker_trips <- t.breaker_trips + 1;
          emit t ~a:id ~b:served_by "breaker:quarantine";
          Array.iteri
            (fun i s ->
              if i <> served_by && Health.alive (Supervisor.health s) then begin
                let m = Supervisor.machine s in
                match m.D.System.ruleset with
                | Some rs' ->
                  if Ruleset.quarantine_by_id rs' id then begin
                    T.Tb.Cache.flush m.D.System.cache;
                    Trace.emit (Supervisor.trace_ring s) ~a:id ~b:served_by
                      Trace.Fleet "breaker:quarantine"
                  end
                | None -> ()
              end)
            t.supervisors
        end)
      (Ruleset.quarantined_ids rs)

let serve_one t =
  let request = t.offered in
  t.offered <- t.offered + 1;
  if serving_count t < t.config.min_healthy then begin
    t.shed <- t.shed + 1;
    Trace.emit t.trace ~a:request Trace.Request "req:shed";
    Shed
  end
  else
    match pick_serving t with
    | None ->
      t.shed <- t.shed + 1;
      Trace.emit t.trace ~a:request Trace.Request "req:shed";
      Shed
    | Some i ->
      let s = t.supervisors.(i) in
      (* the causal anchor: request [a] was assigned to machine [b] —
         recorded on the fleet clock and on the machine's own track *)
      Trace.emit t.trace ~a:request ~b:i Trace.Request "req:assign";
      Trace.emit (Supervisor.trace_ring s) ~a:request ~b:i Trace.Request
        "req:assign";
      let result = Supervisor.serve ~reference:t.reference s ~request () in
      (match result with
      | Supervisor.Served _ -> t.served_ok <- t.served_ok + 1
      | Supervisor.Timed_out -> t.timed_out <- t.timed_out + 1
      | Supervisor.Rejected ->
        (* health changed between pick and serve — count as shed *)
        t.shed <- t.shed + 1
      | Supervisor.Gave_up _ ->
        t.failed <- t.failed + 1;
        emit t ~a:i "machine-dead");
      breaker_sweep t i;
      Done { machine = i; result }

let run ?after_each t ~requests =
  for _ = 1 to requests do
    ignore (serve_one t);
    match after_each with Some f -> f () | None -> ()
  done

(* ---- parallel-dispatch primitives ----

   The domain-parallel dispatcher (Repro_parallel.Parfleet) computes
   outcomes off the coordinator, then replays them into the fleet's
   books here, in request order — reproducing exactly what [serve_one]
   records per request: the offered counter (the fleet ring's clock),
   the ring events and the outcome counters. Breaker sweeps move to
   the epoch barrier, where no machine is serving. *)

let min_healthy t = t.config.min_healthy

(* Machine ids currently willing to serve, ascending — the epoch's
   serving set, fixed at the barrier. *)
let serving_ids t =
  let ids = ref [] in
  for i = Array.length t.supervisors - 1 downto 0 do
    if Health.serving (Supervisor.health t.supervisors.(i)) then
      ids := i :: !ids
  done;
  !ids

let account_shed t =
  let request = t.offered in
  t.offered <- t.offered + 1;
  t.shed <- t.shed + 1;
  Trace.emit t.trace ~a:request Trace.Request "req:shed"

let account_assigned t ~machine result =
  let request = t.offered in
  t.offered <- t.offered + 1;
  Trace.emit t.trace ~a:request ~b:machine Trace.Request "req:assign";
  match result with
  | Supervisor.Served _ -> t.served_ok <- t.served_ok + 1
  | Supervisor.Timed_out -> t.timed_out <- t.timed_out + 1
  | Supervisor.Rejected ->
    (* the machine left the serving set mid-epoch — count as shed,
       like [serve_one]'s pick/serve race *)
    t.shed <- t.shed + 1
  | Supervisor.Gave_up _ ->
    t.failed <- t.failed + 1;
    emit t ~a:machine "machine-dead"

(* Barrier-time circuit breaker: sweep every machine in id order, so
   the broadcast sequence is a function of quarantine state alone —
   not of which domain finished first. *)
let breaker_sweep_all t =
  for i = 0 to Array.length t.supervisors - 1 do
    breaker_sweep t i
  done

(* The drill's exit criterion: every surviving machine, faults
   disarmed, reproduces the fault-free reference bit-identically. *)
let final_verify t =
  let checks =
    Array.map (fun s -> Supervisor.verify_clean s t.reference) t.supervisors
  in
  t.final_checks <- Some checks;
  Array.for_all (function Some false -> false | _ -> true) checks

let offered t = t.offered
let served_ok t = t.served_ok
let timed_out t = t.timed_out
let shed t = t.shed
let failed t = t.failed
let breaker_trips t = t.breaker_trips

let restarts t =
  Array.fold_left
    (fun n s -> n + Health.restarts (Supervisor.health s))
    0 t.supervisors

let backoff_insns t =
  Array.fold_left (fun n s -> n + Supervisor.backoff_total s) 0 t.supervisors

let availability t =
  if t.offered = 0 then 1.0 else float_of_int t.served_ok /. float_of_int t.offered

let quarantined_rules t =
  List.sort_uniq compare
    (Hashtbl.fold (fun id () acc -> id :: acc) t.known_quarantined [])

(* The drill's quarantine verdicts outlive the drill: fold them into a
   persistent depot's health section so every later warm boot starts
   with those rules already demoted. *)
let depot_writeback t depot =
  D.System.depot_quarantine_rules depot (quarantined_rules t)

(* Deterministic metrics document: everything here is a function of
   the fleet seed, the base snapshot and the request count, so CI can
   diff two same-seed drills byte-for-byte. Wall-clock and other
   run-environment facts belong under the caller's "volatile" key. *)
let metrics_json t =
  let machine_json i s =
    let h = Supervisor.health s in
    let m = Supervisor.machine s in
    let final =
      match t.final_checks with
      | None -> Jsonx.str "unchecked"
      | Some checks -> (
        match checks.(i) with
        | None -> Jsonx.str "dead"
        | Some true -> Jsonx.str "pass"
        | Some false -> Jsonx.str "fail")
    in
    Jsonx.obj
      [
        ("id", Jsonx.int (Supervisor.id s));
        ("faulty",
         Jsonx.bool
           (match t.plan with
           | Some p -> Fi.Plan.is_faulty p i
           | None -> false));
        ("state", Jsonx.str (Health.state_name (Health.state h)));
        ("strikes", Jsonx.int (Health.strikes h));
        ("crashes", Jsonx.int (Health.crashes h));
        ("restarts", Jsonx.int (Health.restarts h));
        ("served", Jsonx.int (Supervisor.served s));
        ("timeouts", Jsonx.int (Supervisor.timeouts s));
        ("wrong_results", Jsonx.int (Supervisor.wrong_results s));
        ("surfaced_crashes", Jsonx.int (Supervisor.surfaced_crashes s));
        ("backoff_insns", Jsonx.int (Supervisor.backoff_total s));
        ("rung", Jsonx.str (D.System.rung_name (D.System.rung_floor m)));
        ("quarantined_rules",
         Jsonx.arr
           (match m.D.System.ruleset with
           | Some rs -> List.map Jsonx.int (Ruleset.quarantined_ids rs)
           | None -> []));
        ("trace",
         let ring = Supervisor.trace_ring s in
         Jsonx.obj
           [
             ("total", Jsonx.int (Trace.total ring));
             ("dropped", Jsonx.int (Trace.dropped ring));
           ]);
        ("depot",
         let installed, pending = D.System.depot_coverage m in
         Jsonx.obj
           [
             ("installed", Jsonx.int installed);
             ("pending", Jsonx.int pending);
           ]);
        ("final_check", final);
      ]
  in
  Jsonx.obj
    [
      ("machines", Jsonx.int t.config.machines);
      ("min_healthy", Jsonx.int t.config.min_healthy);
      ("plan",
       match t.plan with
       | None -> Jsonx.obj []
       | Some p ->
         Jsonx.obj
           [
             ("seed", Jsonx.int (Fi.Plan.seed p));
             ("faulty",
              Jsonx.arr (List.map Jsonx.int (Fi.Plan.faulty_machines p)));
           ]);
      ("reference",
       Jsonx.obj
         [
           ("code", Jsonx.int t.reference.Supervisor.r_code);
           ("insns", Jsonx.int t.reference.Supervisor.r_insns);
           ("uart_md5", Jsonx.str t.reference.Supervisor.r_uart_digest);
         ]);
      ("offered", Jsonx.int t.offered);
      ("served_ok", Jsonx.int t.served_ok);
      ("timed_out", Jsonx.int t.timed_out);
      ("shed", Jsonx.int t.shed);
      ("failed", Jsonx.int t.failed);
      ("availability", Jsonx.float (availability t));
      ("restarts", Jsonx.int (restarts t));
      ("backoff_insns", Jsonx.int (backoff_insns t));
      ("breaker_trips", Jsonx.int t.breaker_trips);
      ("quarantined_rules",
       Jsonx.arr (List.map Jsonx.int (quarantined_rules t)));
      ("depot",
       let installed, pending = t.boot_depot in
       Jsonx.obj
         [
           ("installed", Jsonx.int installed);
           ("pending", Jsonx.int pending);
         ]);
      ("serving", Jsonx.int (serving_count t));
      ("alive", Jsonx.int (alive_count t));
      ("all_verified",
       match t.final_checks with
       | None -> Jsonx.str "unchecked"
       | Some checks ->
         Jsonx.bool
           (Array.for_all (function Some false -> false | _ -> true) checks));
      ("latency", Histo.to_json (latency t));
      ("per_machine",
       Jsonx.arr (Array.to_list (Array.mapi machine_json t.supervisors)));
    ]
