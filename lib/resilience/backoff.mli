(** Deterministic exponential backoff on the retired-guest-insn clock.

    Restart delays are {e modeled} time, measured in guest
    instructions like every other latency in the repository, and every
    jitter draw comes from a seeded {!Repro_common.Prng} — a chaos
    drill replays its exact restart schedule from the fleet seed. *)

type t

val create : ?base:int -> ?cap:int -> seed:int -> unit -> t
(** [base] (default 10_000 guest insns) is the first-attempt window,
    doubling per attempt up to [cap] (default 1_000_000). Raises
    [Invalid_argument] if [base <= 0] or [cap < base]. *)

val next : t -> int
(** The delay for the next restart attempt: uniformly jittered over
    the upper half of the current window, then the window doubles.
    Accumulates into {!total}. *)

val attempt : t -> int
(** Attempts drawn since creation or the last {!reset}. *)

val total : t -> int
(** Total modeled delay ever drawn (guest insns) — the fleet's
    restart-latency metric. *)

val reset : t -> unit
(** Back to the first-attempt window (a successful restart ends the
    escalation; the jitter stream continues, it does not rewind). *)
