(** Per-machine health ladder: healthy -> degraded -> quarantined ->
    dead.

    Driven by the existing failure signals — watchdog livelock
    recoveries, shadow-verification divergences, request deadline
    timeouts, and outright crashes (surfaced livelocks, corrupt
    snapshots, wrong results). The ladder only descends on signals;
    the one ascending edge is a successful restart lifting a
    quarantined machine back to degraded. [Dead] is absorbing and only
    entered explicitly ({!kill}, when the supervisor's retry budget is
    exhausted). *)

type state = Healthy | Degraded | Quarantined | Dead

val state_name : state -> string

type signal =
  | Watchdog_recovered  (** in-run livelock recovered by rung demotion *)
  | Shadow_divergence   (** shadow verification repaired a divergence *)
  | Deadline_timeout    (** a request ran past its deadline *)
  | Crash
      (** the request could not complete: surfaced livelock, corrupt
          checkpoint, or a result that failed verification *)

val signal_name : signal -> string

type t

val create : ?degrade_after:int -> ?quarantine_after:int -> unit -> t
(** Strike thresholds: at [degrade_after] total strikes (default 1) a
    healthy machine turns degraded; at [quarantine_after] (default 4)
    it is quarantined — pulled from serving until a restart succeeds.
    Raises [Invalid_argument] unless
    [0 < degrade_after <= quarantine_after]. *)

val state : t -> state
val alive : t -> bool  (** not [Dead] *)

val serving : t -> bool
(** Eligible for new requests: [Healthy] or [Degraded]. *)

val note : t -> signal -> state
(** Record one signal and apply the threshold policy; returns the
    (possibly new) state. No-op on a dead machine beyond counting. *)

val note_restart_ok : t -> state
(** A restart-from-snapshot completed: counts it, and lifts
    [Quarantined] back to [Degraded] with the quarantine threshold
    re-armed. Never reaches [Healthy] again. *)

val kill : t -> unit
(** Retry budget exhausted: the machine is dead. *)

val strikes : t -> int
val crashes : t -> int
val restarts : t -> int
val count : t -> signal -> int
val pp : Format.formatter -> t -> unit
