open Repro_common

type t = {
  base : int;
  cap : int;
  prng : Prng.t;
  mutable attempt : int;
  mutable total : int;
}

let create ?(base = 10_000) ?(cap = 1_000_000) ~seed () =
  if base <= 0 then invalid_arg "Backoff.create: base <= 0";
  if cap < base then invalid_arg "Backoff.create: cap < base";
  { base; cap; prng = Prng.create ~seed; attempt = 0; total = 0 }

let attempt t = t.attempt
let total t = t.total

let next t =
  (* Exponential growth capped at [cap], with full jitter over the
     upper half of the window: the deterministic PRNG draw keeps two
     machines that crashed at the same instant from retrying in
     lockstep, while the same fleet seed replays the same delays. *)
  let shift = min t.attempt 40 in
  let raw =
    if t.base > t.cap asr shift then t.cap else t.base lsl shift
  in
  let half = raw / 2 in
  let delay = half + Prng.int t.prng (raw - half + 1) in
  t.attempt <- t.attempt + 1;
  t.total <- t.total + delay;
  delay

let reset t = t.attempt <- 0
