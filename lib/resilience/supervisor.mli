(** Crash-only supervision of one machine serving from a warm snapshot.

    A supervisor owns one {!Repro_dbt.System} built to the shape of a
    shared warm base snapshot (mode, RAM size, injector behavior).
    Every request — and every retry within a request — begins with a
    restore: from the request's own last {e clean} checkpoint when one
    exists, else from the base. The failure policy is explicit:

    - per-request deadlines on the retired-guest-insn clock, surfacing
      as the typed {!Timed_out} outcome;
    - automatic restart from the last clean checkpoint with a bounded
      retry budget and deterministic, PRNG-jittered exponential
      {!Backoff};
    - a {!Health} ladder fed by watchdog recoveries, shadow-
      verification divergences, deadline timeouts and crashes;
      reaching quarantine also drops the machine's engine floor one
      rung ({!Repro_dbt.System.degrade_floor});
    - a machine whose retry budget runs out is killed ({!Gave_up}).

    Everything is deterministic: injector entropy is derived per
    (machine, request, attempt) from the fleet plan's per-machine seed,
    so the same fleet seed replays the same failures, restarts and
    backoff delays. *)

type policy = {
  deadline : int;
      (** per-request budget in retired guest instructions; fixed as
          one absolute clock value at the request's first attempt, so
          watchdog rollbacks and checkpoint resumes never shrink it *)
  retry_budget : int;  (** restarts allowed per request before death *)
  checkpoint_every : int;  (** periodic-checkpoint interval (insns) *)
  backoff_base : int;  (** first restart-delay window (insns) *)
  backoff_cap : int;  (** restart-delay ceiling (insns) *)
  degrade_after : int;  (** health strikes to leave [Healthy] *)
  quarantine_after : int;  (** health strikes to quarantine *)
  shadow_depth : int;  (** shadow-verification depth per rule TB *)
  quarantine_threshold : int;  (** per-rule strike limit *)
}

val default_policy : policy
(** deadline 2M insns, 3 retries, checkpoints every 4k, backoff
    10k..1M, degrade at 1 strike / quarantine at 4, shadow depth 4,
    rule quarantine threshold 2. *)

type reference = { r_code : int; r_uart_digest : string; r_insns : int }
(** The fault-free ground truth a served result is verified against:
    halt code, MD5 of the UART byte stream, and net retired guest
    instructions. *)

type outcome =
  | Served of { code : int; insns : int; attempts : int }
      (** verified result; [insns] is net retired work from the base
          clock, [attempts] counts runs (1 = no restart) *)
  | Timed_out  (** the deadline passed; the request is discarded *)
  | Rejected  (** the machine was not serving (quarantined or dead) *)
  | Gave_up of { attempts : int }
      (** retry budget exhausted; the machine is now dead *)

val outcome_name : outcome -> string

type t

val create :
  ?plan:Repro_faultinject.Faultinject.Plan.t ->
  ?trace:Repro_observe.Trace.t ->
  id:int ->
  policy:policy ->
  Repro_snapshot.Snapshot.t ->
  t
(** [create ~id ~policy base] builds the machine to [base]'s shape and
    restores it once (pinning the base insn-clock value). [plan], when
    given, arms the fleet chaos plan's faults for this machine id on
    every restore. [trace] receives [Fleet]-category events (crashes,
    backoff delays, restarts, demotions, death). Raises
    [Snapshot.Corrupt] / [Snapshot.Load_error] if [base] is damaged.

    Every supervised machine additionally carries an always-on
    observability surface, so telemetry export never changes what was
    recorded: its own trace ring ({!trace_ring}, fed by the engine and
    by [Request]-category request-lifecycle events on the monotone
    {!work_insns} clock), a perfscope ({!scope}) attributing every
    retired host instruction to a phase, and a serve-latency histogram
    ({!latency}). All three are purely observational (see
    {!Repro_dbt.System.create}); drill results are bit-identical
    whether or not anything reads them. *)

val detach_shared_ring : t -> unit
(** Stop emitting supervision events on the shared fleet ring passed
    to {!create}. The domain-parallel dispatcher detaches every
    machine before serving: a ring is not safe for concurrent writers,
    and after the detach a serve touches only machine-owned state.
    Supervision events keep riding the machine's own {!trace_ring}
    unchanged. *)

val serve : ?reference:reference -> t -> request:int -> unit -> outcome
(** Serve one request under the policy. With [reference], a halt whose
    code or UART digest mismatches counts as a crash (wrong result) and
    is retried like any other failure. *)

val verify_clean : t -> reference -> bool option
(** Restore the base, disarm every fault site, run once and compare
    the architectural output (halt code and UART byte stream) against
    [reference] — the standing recovery invariant: whatever a
    surviving machine quarantined, blacklisted or degraded along the
    way, its fault-free output must stay bit-identical. The retired-
    insn total is deliberately {e not} compared: timer IRQs are
    delivered at TB boundaries, which shift across engine rungs and
    under quarantine fallback, so the count is engine-dependent at the
    margin. [None] if the machine is dead. *)

val id : t -> int
val health : t -> Health.t
val machine : t -> Repro_dbt.System.t

val trace_ring : t -> Repro_observe.Trace.t
(** This machine's own event ring: engine events plus the request
    lifecycle ([req:begin]/[req:end]/[req:retry]/[req:verdict] in the
    [Request] category, request id in [a]) and supervision events
    ([Fleet] category), timestamped on the monotone {!work_insns}
    clock. Always on; ring overflow advances its drop counter (the
    fleet report exposes both). *)

val scope : t -> Repro_perfscope.Scope.t
(** This machine's performance scope (always attached): per-phase
    host-insn totals, monotone across restores — the cost signature
    the anomaly detector compares across the fleet. *)

val latency : t -> Repro_perfscope.Histo.t
(** Serve latencies recorded by this machine: net retired insns for
    [Served], the policy deadline for [Timed_out]. The fleet-level
    histogram is exactly the merge of the per-machine ones. *)

val work_insns : t -> int
(** The machine's monotone work clock: cumulative retired guest
    instructions across every attempt, continuous across restores
    (a restore takes zero work time, rather than rewinding). The
    timestamp domain of {!trace_ring}. *)

val backoff_total : t -> int
(** Accumulated modeled restart delay, in guest insns. *)

val served : t -> int
val timeouts : t -> int

val wrong_results : t -> int
(** Halts whose code or UART digest failed verification. *)

val surfaced_crashes : t -> int
(** Surfaced livelocks plus corrupt-checkpoint restores. *)
