(** Self-healing fleet: N supervised machines serving one workload
    from a shared warm snapshot, under deterministic chaos.

    The fleet adds the cross-machine policy on top of
    {!Supervisor}:

    - {e admission control}: a request is shed when fewer than
      [min_healthy] machines are willing to serve;
    - {e round-robin dispatch} over the serving machines;
    - {e fleet-wide circuit breaker}: a translation rule quarantined
      on any machine (shadow verification caught it misfiring) is
      demoted on every other machine before it can misfire there too;
    - {e final verification}: after a drill, every surviving machine
      re-runs the workload with faults disarmed and must reproduce the
      fault-free reference bit-identically.

    Every number the fleet reports is a deterministic function of
    (fleet seed, base snapshot, request count) — {!metrics_json} from
    two same-seed drills diffs byte-for-byte. *)

type config = {
  machines : int;
  min_healthy : int;
      (** shed new requests when fewer machines are serving *)
  policy : Supervisor.policy;
}

type disposition =
  | Shed  (** admission control refused the request *)
  | Done of { machine : int; result : Supervisor.outcome }

type t

val create :
  ?plan:Repro_faultinject.Faultinject.Plan.t ->
  ?trace:Repro_observe.Trace.t ->
  config:config ->
  Repro_snapshot.Snapshot.t ->
  t
(** Build the fleet from a warm base snapshot: first the fault-free
    reference run (a pristine machine, faults never armed), then one
    supervised machine per fleet slot. Raises [Invalid_argument] on a
    bad config, a plan sized for a different fleet, or a reference run
    that cannot complete within the policy deadline; raises
    [Snapshot.Corrupt] / [Snapshot.Load_error] on a damaged base.

    The fleet always keeps its own event ring on the request-counter
    clock — dispatch ([req:assign]/[req:shed] in the [Request]
    category), breaker and machine-death events — whether or not
    anyone exports it; [?trace] merely supplies the ring a caller
    intends to export, so a drill's report is bit-identical with and
    without telemetry. *)

val serve_one : t -> disposition
(** Admit (or shed) and serve the next request, then run the circuit-
    breaker sweep over the machine that served. Emits [req:assign]
    (request in [a], machine in [b]) on both the fleet ring and the
    chosen machine's own ring — the causal join key between the fleet
    timeline and the per-machine timelines. *)

val run : ?after_each:(unit -> unit) -> t -> requests:int -> unit
(** [requests] times {!serve_one}, discarding dispositions (the
    counters and histogram keep the aggregate story). [after_each]
    runs after every request — the telemetry collector's sampling
    hook. *)

(** {2 Parallel-dispatch primitives}

    Used by the domain-parallel dispatcher
    ([Repro_parallel.Parfleet]), which computes outcomes on worker
    domains and then replays them into the fleet's books on the
    coordinator, in request order. Each replay call reproduces exactly
    what {!serve_one} records for that request — the offered counter
    (the fleet ring's clock), the ring events, the outcome counters —
    so the report stays a pure function of (seed, base, requests). *)

val min_healthy : t -> int

val serving_ids : t -> int list
(** Machine ids currently willing to serve, ascending — the epoch's
    serving set, fixed at the barrier. *)

val account_shed : t -> unit
(** Book one shed request: bump the offered/shed counters and emit
    [req:shed] on the fleet ring. *)

val account_assigned : t -> machine:int -> Supervisor.outcome -> unit
(** Book one request served by [machine]: bump the offered counter,
    emit [req:assign] on the fleet ring, count the outcome
    ([Rejected] counts as shed, [Gave_up] as failed plus a
    [machine-dead] event) — the replay twin of {!serve_one}'s
    accounting. *)

val breaker_sweep_all : t -> unit
(** Run the fleet-wide circuit-breaker sweep over every machine in id
    order — the epoch-barrier form of the per-serve sweep, run when no
    machine is serving so the broadcast order is a function of
    quarantine state alone. *)

val final_verify : t -> bool
(** Run {!Supervisor.verify_clean} on every machine; records the
    verdicts for {!metrics_json} and returns whether no surviving
    machine diverged. *)

val metrics_json : t -> string
(** The deterministic drill report (JSON object): aggregate counters,
    availability, restart/backoff totals, breaker trips, the latency
    histogram, boot-depot coverage ({!note_boot_depot}), and a
    per-machine breakdown (state, strikes, rung, quarantined rules,
    trace-ring total/dropped counts, depot coverage, final check).
    Volatile facts (wall-clock time) are deliberately excluded —
    callers add them under their own key. *)

val reference : t -> Supervisor.reference
val machines : t -> int
val supervisor : t -> int -> Supervisor.t

val trace : t -> Repro_observe.Trace.t
(** The fleet's own event ring (request-counter clock). Always on;
    see {!create}. *)

val latency : t -> Repro_perfscope.Histo.t
(** Fleet-wide serve-latency histogram, computed on demand as the
    bucket-wise merge of every machine's {!Supervisor.latency}
    ([Served] records net insns, [Timed_out] records the policy
    deadline, nothing else records). The fleet keeps no histogram of
    its own — one recording site, one merge path. *)

val note_boot_depot : t -> installed:int -> pending:int -> unit
(** Record the boot machine's AOT-depot coverage
    ({!Repro_dbt.System.depot_coverage}) for {!metrics_json}'s
    fleet-level ["depot"] object; defaults to [(0, 0)] (cold boot). *)

val serving_count : t -> int
val alive_count : t -> int
val offered : t -> int
val served_ok : t -> int
val timed_out : t -> int
val shed : t -> int
val failed : t -> int
val breaker_trips : t -> int
val restarts : t -> int
val backoff_insns : t -> int
val availability : t -> float
val quarantined_rules : t -> int list
(** Every rule id the fleet-wide circuit breaker demoted during the
    drill, sorted ascending. *)

val depot_writeback : t -> Repro_aotcache.Depot.t -> bool
(** Merge {!quarantined_rules} into [depot]'s persistent health
    section (see {!Repro_dbt.System.depot_quarantine_rules}). Returns
    [true] when the depot changed and is worth re-saving; raises
    {!Repro_aotcache.Depot.Depot_error} if its health section cannot
    be decoded. *)
