type state = Healthy | Degraded | Quarantined | Dead

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Quarantined -> "quarantined"
  | Dead -> "dead"

type signal =
  | Watchdog_recovered
  | Shadow_divergence
  | Deadline_timeout
  | Crash

let signal_name = function
  | Watchdog_recovered -> "watchdog-recovered"
  | Shadow_divergence -> "shadow-divergence"
  | Deadline_timeout -> "deadline-timeout"
  | Crash -> "crash"

type t = {
  degrade_after : int;
  quarantine_after : int;
  mutable state : state;
  mutable strikes : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable signals : (signal * int) list;  (* per-signal counts *)
}

let create ?(degrade_after = 1) ?(quarantine_after = 4) () =
  if degrade_after <= 0 then invalid_arg "Health.create: degrade_after <= 0";
  if quarantine_after < degrade_after then
    invalid_arg "Health.create: quarantine_after < degrade_after";
  {
    degrade_after;
    quarantine_after;
    state = Healthy;
    strikes = 0;
    crashes = 0;
    restarts = 0;
    signals = [];
  }

let state t = t.state
let strikes t = t.strikes
let crashes t = t.crashes
let restarts t = t.restarts

let count t signal =
  match List.assoc_opt signal t.signals with Some n -> n | None -> 0

let bump t signal =
  t.signals <- (signal, count t signal + 1) :: List.remove_assoc signal t.signals

let alive t = t.state <> Dead
let serving t = match t.state with Healthy | Degraded -> true | Quarantined | Dead -> false

(* The ladder only descends on signals; the single ascending edge is a
   successful restart lifting Quarantined back to Degraded (never to
   Healthy — a machine that earned quarantine stays suspect). *)
let note t signal =
  bump t signal;
  if t.state <> Dead then begin
    t.strikes <- t.strikes + 1;
    (match signal with Crash -> t.crashes <- t.crashes + 1 | _ -> ());
    if t.strikes >= t.quarantine_after then t.state <- Quarantined
    else if t.strikes >= t.degrade_after then
      match t.state with Healthy -> t.state <- Degraded | _ -> ()
  end;
  t.state

let note_restart_ok t =
  if t.state <> Dead then begin
    t.restarts <- t.restarts + 1;
    match t.state with
    | Quarantined ->
      t.state <- Degraded;
      (* re-arm the quarantine threshold so the next strikes can
         re-quarantine rather than trip instantly *)
      t.strikes <- t.degrade_after
    | Healthy | Degraded | Dead -> ()
  end;
  t.state

let kill t = t.state <- Dead

let pp ppf t =
  Format.fprintf ppf "%s (strikes %d, crashes %d, restarts %d)"
    (state_name t.state) t.strikes t.crashes t.restarts
