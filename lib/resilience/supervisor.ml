module D = Repro_dbt
module T = Repro_tcg
module Fi = Repro_faultinject.Faultinject
module Snapshot = Repro_snapshot.Snapshot
module Stats = Repro_x86.Stats
module Trace = Repro_observe.Trace
module Scope = Repro_perfscope.Scope
module Histo = Repro_perfscope.Histo

type policy = {
  deadline : int;
  retry_budget : int;
  checkpoint_every : int;
  backoff_base : int;
  backoff_cap : int;
  degrade_after : int;
  quarantine_after : int;
  shadow_depth : int;
  quarantine_threshold : int;
}

let default_policy =
  {
    deadline = 2_000_000;
    retry_budget = 3;
    checkpoint_every = 4_000;
    backoff_base = 10_000;
    backoff_cap = 1_000_000;
    degrade_after = 1;
    quarantine_after = 4;
    shadow_depth = 4;
    quarantine_threshold = 2;
  }

type reference = { r_code : int; r_uart_digest : string; r_insns : int }

type outcome =
  | Served of { code : int; insns : int; attempts : int }
  | Timed_out
  | Rejected
  | Gave_up of { attempts : int }

let outcome_name = function
  | Served _ -> "served"
  | Timed_out -> "timed-out"
  | Rejected -> "rejected"
  | Gave_up _ -> "gave-up"

(* stable small codes for the req:verdict trace payload *)
let outcome_code = function
  | Served _ -> 0
  | Timed_out -> 1
  | Rejected -> 2
  | Gave_up _ -> 3

type t = {
  id : int;
  policy : policy;
  base : Snapshot.t;
  base_insns : int;  (* retired-insn clock value captured in [base] *)
  machine : D.System.t;
  plan : Fi.Plan.t option;
  health : Health.t;
  backoff : Backoff.t;
  mutable trace : Trace.t option;
      (* the fleet's shared ring (request clock); detached before
         domain-parallel serving — see [detach_shared_ring] *)
  mtrace : Trace.t;  (* this machine's own ring (work clock), always on *)
  scope : Scope.t;  (* per-machine phase attribution, always on *)
  latency : Histo.t;  (* serve latency of this machine's requests *)
  work_skew : int ref;
      (* monotone work clock: restores rewind [stats.guest_insns], so
         telemetry time is [!work_skew + guest_insns] and the skew is
         re-anchored across every supervision-level restore *)
  mutable served : int;
  mutable timeouts : int;
  mutable wrong_results : int;
  mutable surfaced_crashes : int;
}

(* Derive a per-(machine, request, attempt) injector seed from the
   plan's per-machine seed: deterministic for a fleet seed, different
   across retries so a restart is not condemned to replay the exact
   fault schedule that just killed the request. *)
let salt seed ~request ~attempt =
  let mix a b = (a * 0x9E3779B1) + b land max_int in
  1 + (mix (mix seed (request + 1)) (attempt + 1) land 0x3FFF_FFFF)

let emit t ?(a = -1) name =
  match t.trace with
  | Some tr -> Trace.emit tr ~a:(if a >= 0 then a else t.id) Trace.Fleet name
  | None -> ()

(* machine-ring events ride the monotone work clock *)
let emit_m t ?a ?b cat name = Trace.emit t.mtrace ?a ?b cat name

(* Restore without letting the telemetry clock travel backwards: the
   snapshot rewinds [stats.guest_insns], the skew absorbs the rewind
   so the machine's work clock is continuous (a restore takes zero
   work time). *)
let restore_monotone machine work_skew snap =
  let stats = D.System.stats machine in
  let before = !work_skew + stats.Stats.guest_insns in
  D.System.restore machine snap;
  work_skew := before - stats.Stats.guest_insns

let create ?plan ?trace ~id ~policy base =
  let mode = D.System.snapshot_mode base in
  let mtrace = Trace.create () in
  let scope = Scope.create () in
  let machine =
    D.System.create
      ~ram_kib:(D.System.snapshot_ram_kib base)
      ?inject:(D.System.snapshot_injector base)
      ~shadow_depth:policy.shadow_depth
      ~quarantine_threshold:policy.quarantine_threshold ~trace:mtrace ~scope
      mode
  in
  let work_skew = ref 0 in
  (* override the runtime's raw guest-insn clock with the monotone
     work clock (same value until the first restore rewinds stats) *)
  Trace.set_clock mtrace (fun () ->
      !work_skew + (D.System.stats machine).Stats.guest_insns);
  (* one restore up front pins the base clock value (the retired-insn
     count captured in the warm snapshot) and proves the shape matches *)
  restore_monotone machine work_skew base;
  {
    id;
    policy;
    base;
    base_insns = (D.System.stats machine).Stats.guest_insns;
    machine;
    plan;
    health =
      Health.create ~degrade_after:policy.degrade_after
        ~quarantine_after:policy.quarantine_after ();
    backoff =
      Backoff.create ~base:policy.backoff_base ~cap:policy.backoff_cap
        ~seed:(salt (id + 1) ~request:0 ~attempt:0)
        ();
    trace;
    mtrace;
    scope;
    latency = Histo.create ();
    work_skew;
    served = 0;
    timeouts = 0;
    wrong_results = 0;
    surfaced_crashes = 0;
  }

(* A trace ring is not safe for concurrent writers, and under the
   domain-parallel dispatcher several machines serve at once. Dropping
   the shared fleet ring makes a serve touch only machine-owned state;
   every supervision event also rides the machine's own ring, so
   nothing is lost from the per-machine timelines. *)
let detach_shared_ring t = t.trace <- None

let id t = t.id
let health t = t.health
let machine t = t.machine
let trace_ring t = t.mtrace
let scope t = t.scope
let latency t = t.latency
let work_insns t = !(t.work_skew) + (D.System.stats t.machine).Stats.guest_insns
let backoff_total t = Backoff.total t.backoff
let served t = t.served
let timeouts t = t.timeouts
let wrong_results t = t.wrong_results
let surfaced_crashes t = t.surfaced_crashes

let arm t ~request ~attempt =
  match (t.plan, t.machine.D.System.rt.T.Runtime.inject) with
  | Some plan, Some inj ->
    Fi.Plan.arm plan t.id inj;
    Fi.reseed inj ~seed:(salt (Fi.Plan.machine_seed plan t.id) ~request ~attempt)
  | _ -> ()

let classify_postmortem reason =
  if String.length reason >= 8 && String.sub reason 0 8 = "livelock" then
    Health.Watchdog_recovered
  else Health.Shadow_divergence

let uart_digest machine =
  Digest.to_hex (Digest.string (D.System.uart_output machine))

(* Crash-only serving: every request (and every retry) begins with a
   restore — from the warm base snapshot, or from the last clean
   checkpoint this request produced, so a restart resumes partially-
   done work instead of redoing it. The deadline is one absolute
   retired-insn clock value fixed at the first attempt: watchdog
   rollbacks and checkpoint resumes rewind the clock, so re-executed
   spans never eat the request's budget. *)
let serve ?reference t ~request () =
  if not (Health.serving t.health) then Rejected
  else begin
    let deadline_abs = t.base_insns + t.policy.deadline in
    let restart_point = ref None in
    let stats = D.System.stats t.machine in
    let finish attempt outcome =
      emit_m t ~a:request ~b:attempt Trace.Request "req:end";
      emit_m t ~a:request ~b:(outcome_code outcome) Trace.Request "req:verdict";
      (match outcome with
      | Served { insns; _ } -> Histo.record t.latency insns
      | Timed_out -> Histo.record t.latency t.policy.deadline
      | Rejected | Gave_up _ -> ());
      outcome
    in
    let rec attempt_run attempt =
      let crash signal kind =
        (match signal with
        | Health.Crash when kind = `Surfaced ->
          t.surfaced_crashes <- t.surfaced_crashes + 1
        | Health.Crash -> t.wrong_results <- t.wrong_results + 1
        | _ -> ());
        let state = Health.note t.health signal in
        emit t (Printf.sprintf "crash:%s" (Health.signal_name signal));
        emit_m t ~a:request ~b:attempt Trace.Request "req:end";
        emit_m t ~a:request Trace.Fleet
          (Printf.sprintf "crash:%s" (Health.signal_name signal));
        (* quarantine-level health drops the engine floor one rung:
           restarts alone did not fix it, so re-serve on a simpler,
           safer engine *)
        if state = Health.Quarantined && D.System.degrade_floor t.machine then begin
          let rung = D.System.rung_name (D.System.rung_floor t.machine) in
          emit t (Printf.sprintf "degrade:%s" rung);
          emit_m t ~a:request Trace.Fleet (Printf.sprintf "degrade:%s" rung)
        end;
        if attempt >= t.policy.retry_budget then begin
          Health.kill t.health;
          emit t "dead";
          emit_m t ~a:request Trace.Fleet "dead";
          emit_m t ~a:request ~b:(outcome_code (Gave_up { attempts = 0 }))
            Trace.Request "req:verdict";
          Gave_up { attempts = attempt + 1 }
        end
        else begin
          let delay = Backoff.next t.backoff in
          emit t ~a:delay "backoff";
          emit_m t ~a:request ~b:delay Trace.Fleet "backoff";
          emit_m t ~a:request ~b:(attempt + 1) Trace.Request "req:retry";
          attempt_run (attempt + 1)
        end
      in
      match
        restore_monotone t.machine t.work_skew
          (match !restart_point with Some cp -> cp | None -> t.base);
        arm t ~request ~attempt;
        if attempt > 0 then begin
          ignore (Health.note_restart_ok t.health);
          emit t "restart";
          emit_m t ~a:request ~b:attempt Trace.Fleet "restart"
        end;
        emit_m t ~a:request ~b:attempt Trace.Request "req:begin";
        D.System.run ~deadline:deadline_abs
          ~checkpoint_every:t.policy.checkpoint_every
          ~on_checkpoint:(fun snap ->
            if D.System.snapshot_clean snap then restart_point := Some snap)
          ~on_postmortem:(fun ~reason _dump ->
            ignore (Health.note t.health (classify_postmortem reason)))
          t.machine
      with
      | res -> (
        match res.T.Engine.reason with
        | `Halted code -> (
          let insns = stats.Stats.guest_insns - t.base_insns in
          match reference with
          | Some r when r.r_code <> code || r.r_uart_digest <> uart_digest t.machine
            ->
            crash Health.Crash `Wrong_result
          | _ ->
            Backoff.reset t.backoff;
            t.served <- t.served + 1;
            finish attempt (Served { code; insns; attempts = attempt + 1 }))
        | `Deadline ->
          (* a typed request-level result, not a machine failure worth
             a restart: the guest state is consistent and the next
             request restores from scratch anyway *)
          t.timeouts <- t.timeouts + 1;
          ignore (Health.note t.health Health.Deadline_timeout);
          emit t "timeout";
          finish attempt Timed_out
        | `Livelock _ -> crash Health.Crash `Surfaced
        | `Insn_limit -> assert false (* no [max_guest_insns] given *))
      | exception Snapshot.Corrupt _ ->
        (* the held checkpoint did not restore; fall back to the base *)
        restart_point := None;
        crash Health.Crash `Surfaced
      | exception Snapshot.Load_error _ ->
        restart_point := None;
        crash Health.Crash `Surfaced
    in
    attempt_run 0
  end

(* The standing recovery invariant: with faults disarmed, a surviving
   machine — whatever it quarantined, blacklisted or degraded along the
   way — must reproduce the fault-free reference bit-identically. *)
let verify_clean t reference =
  if not (Health.alive t.health) then None
  else begin
    restore_monotone t.machine t.work_skew t.base;
    (match t.machine.D.System.rt.T.Runtime.inject with
    | Some inj -> List.iter (fun s -> Fi.set_rate inj s 0.) Fi.all_sites
    | None -> ());
    let verdict ok =
      emit_m t ~a:(if ok then 1 else 0) Trace.Fleet "verify:clean";
      Some ok
    in
    match
      D.System.run ~deadline:(t.base_insns + t.policy.deadline) t.machine
    with
    | res -> (
      match res.T.Engine.reason with
      | `Halted code ->
        (* architectural output only: halt code and UART byte stream.
           The retired-insn total is NOT engine-invariant — timer IRQs
           are delivered at TB boundaries, and TB boundaries shift
           across rungs and under quarantine fallback, so the handler
           interleaves at marginally different points *)
        verdict
          (code = reference.r_code
          && uart_digest t.machine = reference.r_uart_digest)
      | _ -> verdict false)
    | exception Snapshot.Corrupt _ -> verdict false
    | exception Snapshot.Load_error _ -> verdict false
  end
