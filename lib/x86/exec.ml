open Repro_common

type t = {
  regs : int array;
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  env : int array;
  ram : Bytes.t;
  tlb : int array;
  stats : Stats.t;
  mutable helper : t -> int -> int;
  mutable poison_counter : int;
}

exception Helper_stop of { code : int; arg : int }
exception Fuel_exhausted of { spent : int }

let create ?(env_slots = 64) ?(ram_size = 1 lsl 20) ?(tlb_words = 768) () =
  {
    regs = Array.make 16 0;
    cf = false;
    zf = false;
    sf = false;
    o_f = false;
    env = Array.make env_slots 0;
    ram = Bytes.make ram_size '\000';
    tlb = Array.make tlb_words 0;
    stats = Stats.create ();
    helper = (fun _ _ -> failwith "Exec: no helper dispatcher installed");
    poison_counter = 0;
  }

let get_flags_word t =
  let b cond bit = if cond then 1 lsl bit else 0 in
  b t.sf 31 lor b t.zf 30 lor b t.cf 29 lor b t.o_f 28

let set_flags_word t w =
  t.sf <- Word32.bit w 31;
  t.zf <- Word32.bit w 30;
  t.cf <- Word32.bit w 29;
  t.o_f <- Word32.bit w 28

let eval_cc t (cc : Insn.cc) =
  match cc with
  | Insn.E -> t.zf
  | Insn.NE -> not t.zf
  | Insn.B -> t.cf
  | Insn.AE -> not t.cf
  | Insn.S -> t.sf
  | Insn.NS -> not t.sf
  | Insn.O -> t.o_f
  | Insn.NO -> not t.o_f
  | Insn.A -> (not t.cf) && not t.zf
  | Insn.BE -> t.cf || t.zf
  | Insn.GE -> t.sf = t.o_f
  | Insn.L -> t.sf <> t.o_f
  | Insn.G -> (not t.zf) && t.sf = t.o_f
  | Insn.LE -> t.zf || t.sf <> t.o_f

let read_ram32 t addr =
  Char.code (Bytes.get t.ram addr)
  lor (Char.code (Bytes.get t.ram (addr + 1)) lsl 8)
  lor (Char.code (Bytes.get t.ram (addr + 2)) lsl 16)
  lor (Char.code (Bytes.get t.ram (addr + 3)) lsl 24)

let write_ram32 t addr v =
  Bytes.set t.ram addr (Char.chr (v land 0xFF));
  Bytes.set t.ram (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set t.ram (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set t.ram (addr + 3) (Char.chr ((v lsr 24) land 0xFF))

let read_ram8 t addr = Char.code (Bytes.get t.ram addr)
let write_ram8 t addr v = Bytes.set t.ram addr (Char.chr (v land 0xFF))

let read_ram16 t addr =
  Char.code (Bytes.get t.ram addr) lor (Char.code (Bytes.get t.ram (addr + 1)) lsl 8)

let write_ram16 t addr v =
  Bytes.set t.ram addr (Char.chr (v land 0xFF));
  Bytes.set t.ram (addr + 1) (Char.chr ((v lsr 8) land 0xFF))

let resolve_mem t ({ base; index; scale; disp; seg = _ } : Insn.mem) =
  let b = match base with Some r -> t.regs.(r) | None -> 0 in
  let i = match index with Some r -> t.regs.(r) * scale | None -> 0 in
  Word32.mask (b + i + disp)

let read_mem32 t (m : Insn.mem) =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Env ->
    assert (addr land 3 = 0);
    t.env.(addr lsr 2)
  | Insn.Ram -> read_ram32 t addr
  | Insn.Tlb ->
    assert (addr land 3 = 0);
    t.tlb.(addr lsr 2)

let write_mem32 t (m : Insn.mem) v =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Env ->
    assert (addr land 3 = 0);
    t.env.(addr lsr 2) <- v
  | Insn.Ram -> write_ram32 t addr v
  | Insn.Tlb ->
    assert (addr land 3 = 0);
    t.tlb.(addr lsr 2) <- v

let read_mem16 t (m : Insn.mem) =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Ram -> read_ram16 t addr
  | Insn.Env -> t.env.(addr lsr 2) land 0xFFFF
  | Insn.Tlb -> t.tlb.(addr lsr 2) land 0xFFFF

let write_mem16 t (m : Insn.mem) v =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Ram -> write_ram16 t addr v
  | Insn.Env -> t.env.(addr lsr 2) <- Word32.insert t.env.(addr lsr 2) ~lo:0 ~len:16 v
  | Insn.Tlb -> t.tlb.(addr lsr 2) <- Word32.insert t.tlb.(addr lsr 2) ~lo:0 ~len:16 v

let read_mem8 t (m : Insn.mem) =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Ram -> read_ram8 t addr
  | Insn.Env -> t.env.(addr lsr 2) land 0xFF
  | Insn.Tlb -> t.tlb.(addr lsr 2) land 0xFF

let write_mem8 t (m : Insn.mem) v =
  let addr = resolve_mem t m in
  match m.seg with
  | Insn.Ram -> write_ram8 t addr v
  | Insn.Env -> t.env.(addr lsr 2) <- Word32.insert t.env.(addr lsr 2) ~lo:0 ~len:8 v
  | Insn.Tlb -> t.tlb.(addr lsr 2) <- Word32.insert t.tlb.(addr lsr 2) ~lo:0 ~len:8 v

let read_operand t = function
  | Insn.Reg r -> t.regs.(r)
  | Insn.Imm n -> Word32.mask n
  | Insn.Mem m -> read_mem32 t m

let write_operand t op v =
  let v = Word32.mask v in
  match op with
  | Insn.Reg r -> t.regs.(r) <- v
  | Insn.Mem m -> write_mem32 t m v
  | Insn.Imm _ -> invalid_arg "write to immediate"

let set_logic_flags t r =
  t.zf <- r = 0;
  t.sf <- Word32.is_negative r;
  t.cf <- false;
  t.o_f <- false

let set_sz t r =
  t.zf <- r = 0;
  t.sf <- Word32.is_negative r

let exec_alu t op dst src =
  let a = read_operand t dst and b = read_operand t src in
  match op with
  | Insn.Add ->
    let r = Word32.add a b in
    t.cf <- Word32.carry_of_add a b ~carry_in:false;
    t.o_f <- Word32.overflow_of_add a b r;
    set_sz t r;
    write_operand t dst r
  | Insn.Adc ->
    let cin = t.cf in
    let r = Word32.mask (a + b + if cin then 1 else 0) in
    t.cf <- Word32.carry_of_add a b ~carry_in:cin;
    t.o_f <- Word32.overflow_of_add a b r;
    set_sz t r;
    write_operand t dst r
  | Insn.Sub ->
    let r = Word32.sub a b in
    t.cf <- Word32.borrow_of_sub a b ~borrow_in:false;
    t.o_f <- Word32.overflow_of_sub a b r;
    set_sz t r;
    write_operand t dst r
  | Insn.Sbb ->
    let bin = t.cf in
    let r = Word32.mask (a - b - if bin then 1 else 0) in
    t.cf <- Word32.borrow_of_sub a b ~borrow_in:bin;
    t.o_f <- Word32.overflow_of_sub a b r;
    set_sz t r;
    write_operand t dst r
  | Insn.And ->
    let r = Word32.logand a b in
    set_logic_flags t r;
    write_operand t dst r
  | Insn.Or ->
    let r = Word32.logor a b in
    set_logic_flags t r;
    write_operand t dst r
  | Insn.Xor ->
    let r = Word32.logxor a b in
    set_logic_flags t r;
    write_operand t dst r
  | Insn.Cmp ->
    let r = Word32.sub a b in
    t.cf <- Word32.borrow_of_sub a b ~borrow_in:false;
    t.o_f <- Word32.overflow_of_sub a b r;
    set_sz t r
  | Insn.Test ->
    let r = Word32.logand a b in
    set_logic_flags t r

let exec_shift t op dst amount =
  let v = read_operand t dst in
  let n =
    match amount with Insn.Sh_imm n -> n land 31 | Insn.Sh_cl -> t.regs.(1) land 31
  in
  if n <> 0 then begin
    let r =
      match op with
      | Insn.Shl -> Word32.shift_left v n
      | Insn.Shr -> Word32.shift_right_logical v n
      | Insn.Sar -> Word32.shift_right_arith v n
      | Insn.Ror -> Word32.rotate_right v n
    in
    (match op with
    | Insn.Shl ->
      t.cf <- Word32.bit v (32 - n);
      t.o_f <- false;
      set_sz t r
    | Insn.Shr | Insn.Sar ->
      t.cf <- Word32.bit v (n - 1);
      t.o_f <- false;
      set_sz t r
    | Insn.Ror ->
      (* x86 ror updates only CF (and OF for 1-bit); SF/ZF preserved. *)
      t.cf <- Word32.bit r 31);
    write_operand t dst r
  end

(* Deterministic, obviously-wrong values: coordination bugs surface as
   0xBAD... register contents in differential tests. *)
let poison_caller_saved t =
  for r = 0 to 15 do
    if r <> Insn.rbp && r <> Insn.rsp then begin
      t.poison_counter <- t.poison_counter + 1;
      t.regs.(r) <- Word32.mask (0xBAD0000 + t.poison_counter)
    end
  done

type outcome = Exited of int | Stopped of { code : int; arg : int }

let bump_counter t (c : Insn.counter) =
  match c with
  | Insn.Cnt_guest_insn attr -> Stats.retire t.stats attr
  | Insn.Cnt_sync_op -> t.stats.Stats.sync_ops <- t.stats.Stats.sync_ops + 1
  | Insn.Cnt_mmu_access -> t.stats.Stats.mmu_accesses <- t.stats.Stats.mmu_accesses + 1
  | Insn.Cnt_irq_poll -> t.stats.Stats.irq_polls <- t.stats.Stats.irq_polls + 1

let run t (prog : Prog.t) ~fuel =
  let code = prog.Prog.code in
  let tags = prog.Prog.tags in
  let n = Array.length code in
  let target l =
    match Hashtbl.find_opt prog.Prog.label_index l with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Exec: undefined label %d" l)
  in
  let spent = ref 0 in
  let rec step i =
    if i >= n then failwith "Exec: fell off the end of a TB (missing Exit)"
    else begin
      let insn = code.(i) in
      if not (Prog.is_pseudo insn) then begin
        Stats.charge_tag t.stats tags.(i) 1;
        incr spent;
        if !spent > fuel then raise (Fuel_exhausted { spent = !spent })
      end;
      match insn with
      | Insn.Label _ -> step (i + 1)
      | Insn.Count c ->
        bump_counter t c;
        step (i + 1)
      | Insn.Mov { width = Insn.W32; dst; src } ->
        write_operand t dst (read_operand t src);
        step (i + 1)
      | Insn.Mov { width = Insn.W8; dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFF
          | Insn.Imm v -> v land 0xFF
          | Insn.Mem m -> read_mem8 t m)
        in
        (match dst with
        | Insn.Reg r -> t.regs.(r) <- Word32.insert t.regs.(r) ~lo:0 ~len:8 v
        | Insn.Mem m -> write_mem8 t m v
        | Insn.Imm _ -> invalid_arg "write to immediate");
        step (i + 1)
      | Insn.Mov { width = Insn.W16; dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFFFF
          | Insn.Imm v -> v land 0xFFFF
          | Insn.Mem m -> read_mem16 t m)
        in
        (match dst with
        | Insn.Reg r -> t.regs.(r) <- Word32.insert t.regs.(r) ~lo:0 ~len:16 v
        | Insn.Mem m -> write_mem16 t m v
        | Insn.Imm _ -> invalid_arg "write to immediate");
        step (i + 1)
      | Insn.Movzx16 { dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFFFF
          | Insn.Imm v -> v land 0xFFFF
          | Insn.Mem m -> read_mem16 t m)
        in
        t.regs.(dst) <- v;
        step (i + 1)
      | Insn.Movsx8 { dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFF
          | Insn.Imm v -> v land 0xFF
          | Insn.Mem m -> read_mem8 t m)
        in
        t.regs.(dst) <- Word32.mask (Word32.sign_extend ~width:8 v);
        step (i + 1)
      | Insn.Movsx16 { dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFFFF
          | Insn.Imm v -> v land 0xFFFF
          | Insn.Mem m -> read_mem16 t m)
        in
        t.regs.(dst) <- Word32.mask (Word32.sign_extend ~width:16 v);
        step (i + 1)
      | Insn.Movzx8 { dst; src } ->
        let v = (match src with
          | Insn.Reg r -> t.regs.(r) land 0xFF
          | Insn.Imm v -> v land 0xFF
          | Insn.Mem m -> read_mem8 t m)
        in
        t.regs.(dst) <- v;
        step (i + 1)
      | Insn.Lea { dst; addr } ->
        t.regs.(dst) <- resolve_mem t addr;
        step (i + 1)
      | Insn.Alu { op; dst; src } ->
        exec_alu t op dst src;
        step (i + 1)
      | Insn.Neg o ->
        let v = read_operand t o in
        let r = Word32.neg v in
        t.cf <- v <> 0;
        t.o_f <- v = 0x8000_0000;
        set_sz t r;
        write_operand t o r;
        step (i + 1)
      | Insn.Not o ->
        write_operand t o (Word32.lognot (read_operand t o));
        step (i + 1)
      | Insn.Imul { dst; src } ->
        let r = Word32.mul t.regs.(dst) (read_operand t src) in
        t.regs.(dst) <- r;
        (* Model simplification: imul defines SF/ZF, clears CF/OF. *)
        set_logic_flags t r;
        step (i + 1)
      | Insn.Shift { op; dst; amount } ->
        exec_shift t op dst amount;
        step (i + 1)
      | Insn.Setcc { cc; dst } ->
        t.regs.(dst) <- (if eval_cc t cc then 1 else 0);
        step (i + 1)
      | Insn.Cmovcc { cc; dst; src } ->
        if eval_cc t cc then t.regs.(dst) <- read_operand t src;
        step (i + 1)
      | Insn.Jcc { cc; target = l } ->
        if eval_cc t cc then step (target l) else step (i + 1)
      | Insn.Jmp l -> step (target l)
      | Insn.Savef r ->
        t.regs.(r) <- get_flags_word t;
        step (i + 1)
      | Insn.Loadf r ->
        set_flags_word t t.regs.(r);
        step (i + 1)
      | Insn.Call_helper { id } ->
        t.stats.Stats.helper_calls <- t.stats.Stats.helper_calls + 1;
        let ret = t.helper t id in
        poison_caller_saved t;
        t.regs.(Insn.rax) <- Word32.mask ret;
        step (i + 1)
      | Insn.Exit { slot } -> Exited slot
    end
  in
  try step 0 with Helper_stop { code; arg } -> Stopped { code; arg }
