(** Host-code builder and finalized translation-block programs.

    Emission is append-only with fresh local labels; {!finalize}
    produces an immutable program with a label→index table that the
    {!Exec} interpreter runs directly. *)

type builder

val builder : unit -> builder

val emit : builder -> ?tag:Insn.tag -> Insn.t -> unit
(** Append one instruction ([tag] defaults to [Tag_compute]). *)

val emit_all : builder -> ?tag:Insn.tag -> Insn.t list -> unit

val repatch_last_retire : builder -> (int -> int) -> unit
(** Rewrite the attribution payload of the most recently emitted
    [Count (Cnt_guest_insn _)] in place (a no-op if none was emitted).
    Lets a fallback path re-attribute the current guest instruction
    after its retirement counter has already been placed. *)

val fresh_label : builder -> int
(** Allocate a label id (place it with [emit (Label id)]). *)

val bind_label : builder -> int -> unit
(** Shorthand for [emit (Label id)]. *)

val length : builder -> int
(** Number of countable (non-pseudo) instructions emitted so far. *)

type t = private {
  code : Insn.t array;
  tags : Insn.tag array;
  label_index : (int, int) Hashtbl.t;  (** label id → code index *)
}

val finalize : builder -> t
val pp : Format.formatter -> t -> unit
val static_count : t -> int
(** Countable (non-pseudo) instructions in the program. *)

val is_pseudo : Insn.t -> bool
(** Labels and counters execute at zero cost. *)
