(** Host execution context and instruction-counting interpreter.

    The context owns the three address spaces emitted code can touch
    (guest-state [Env] array, guest physical [Ram], softMMU [Tlb]
    array) plus the 16-register file and EFLAGS. Helper calls dispatch
    to OCaml closures; on return every register except rbp/rsp is
    poisoned with a deterministic garbage value, so translated code
    that fails to coordinate guest CPU state breaks loudly in
    differential tests instead of silently working. *)

open Repro_common

type t = {
  regs : int array;  (** 16 host registers, 32-bit values *)
  mutable cf : bool;
  mutable zf : bool;
  mutable sf : bool;
  mutable o_f : bool;
  env : int array;
  ram : Bytes.t;
  tlb : int array;
  stats : Stats.t;
  mutable helper : t -> int -> int;
      (** [helper ctx id] runs helper [id] and returns the rax value.
          May raise {!Helper_stop}. Must charge its modelled cost via
          [stats]. *)
  mutable poison_counter : int;
}

exception Helper_stop of { code : int; arg : int }
(** Raised by helpers to abort TB execution (guest exception entry,
    interrupt delivery, machine halt). The engine interprets [code]. *)

exception Fuel_exhausted of { spent : int }
(** Raised by {!run} when a TB executes more than [fuel] countable
    host instructions — a runaway host loop (only reachable through
    corrupted emitted code; well-formed TBs are finite). Typed so the
    engine's livelock watchdog can catch it and roll back to a
    checkpoint instead of killing the process. *)

val create : ?env_slots:int -> ?ram_size:int -> ?tlb_words:int -> unit -> t
(** Defaults: 64 env slots, 1 MiB RAM, 3×256 TLB words. The [helper]
    field starts as a function that fails. *)

val get_flags_word : t -> Word32.t
(** EFLAGS packed in ARM NZCV layout (SF→31, ZF→30, CF→29, OF→28) —
    what [Savef] stores. *)

val set_flags_word : t -> Word32.t -> unit
val eval_cc : t -> Insn.cc -> bool
val read_ram32 : t -> int -> Word32.t
val write_ram32 : t -> int -> Word32.t -> unit
val read_ram8 : t -> int -> int
val write_ram8 : t -> int -> int -> unit
val read_ram16 : t -> int -> int
val write_ram16 : t -> int -> int -> unit

type outcome =
  | Exited of int  (** TB finished through exit slot [n] *)
  | Stopped of { code : int; arg : int }  (** a helper raised {!Helper_stop} *)

val run : t -> Prog.t -> fuel:int -> outcome
(** Execute a finalized program from index 0, charging [stats] per
    retired instruction. Raises {!Fuel_exhausted} if [fuel] countable
    instructions are exceeded (runaway-loop guard). *)

val poison_caller_saved : t -> unit
(** What a helper return does to the register file (exposed for the
    engine, which performs the same clobbering when control returns to
    it between TBs). *)
