(* One row of the coverage-attribution table: dynamic retirements and
   attributed host-instruction cost of one packed attribution word
   (tier | class | idiom | rule — see Repro_covscope.Attr). *)
type cov_entry = { mutable cn : int; mutable ccost : int }

type t = {
  mutable host_insns : int;
  by_tag : int array;
  mutable helper_insns : int;
  mutable helper_calls : int;
  mutable sys_insns : int;
  mutable guest_insns : int;
  mutable sync_ops : int;
  mutable mmu_accesses : int;
  mutable irq_polls : int;
  mutable tlb_misses : int;
  mutable engine_returns : int;
  mutable chained_jumps : int;
  mutable tb_translations : int;
  mutable irqs_delivered : int;
  mutable shadow_replays : int;
  mutable shadow_divergences : int;
  mutable rules_quarantined : int;
  mutable quarantine_fallbacks : int;
  mutable livelocks_recovered : int;
  mutable regions_formed : int;
  (* translation-quality observatory: always-on exact attribution of
     every retired guest instruction (tier/class/idiom/rule packed in
     the [Cnt_guest_insn] payload) plus its dynamic host-insn cost.
     Cost accrual is a delta chain on [host_insns]: a retirement
     closes the previous instruction's accrual window ([cov_pending]
     since [cov_mark]) and opens its own, so the attributed costs
     partition [host_insns] exactly (up to the open tail,
     [cov_residual]). *)
  cov : (int, cov_entry) Hashtbl.t;
  mutable cov_pending : int;  (* attr accruing cost; -1 = none yet *)
  mutable cov_mark : int;     (* host_insns at the last retirement *)
  mutable cov_last_attr : int;
  mutable cov_last : cov_entry option;  (* one-entry lookup cache *)
}

let n_tags = List.length Insn.all_tags

let create () =
  {
    host_insns = 0;
    by_tag = Array.make n_tags 0;
    helper_insns = 0;
    helper_calls = 0;
    sys_insns = 0;
    guest_insns = 0;
    sync_ops = 0;
    mmu_accesses = 0;
    irq_polls = 0;
    tlb_misses = 0;
    engine_returns = 0;
    chained_jumps = 0;
    tb_translations = 0;
    irqs_delivered = 0;
    shadow_replays = 0;
    shadow_divergences = 0;
    rules_quarantined = 0;
    quarantine_fallbacks = 0;
    livelocks_recovered = 0;
    regions_formed = 0;
    cov = Hashtbl.create 64;
    cov_pending = -1;
    cov_mark = 0;
    cov_last_attr = -1;
    cov_last = None;
  }

let reset t =
  t.host_insns <- 0;
  Array.fill t.by_tag 0 n_tags 0;
  t.helper_insns <- 0;
  t.helper_calls <- 0;
  t.sys_insns <- 0;
  t.guest_insns <- 0;
  t.sync_ops <- 0;
  t.mmu_accesses <- 0;
  t.irq_polls <- 0;
  t.tlb_misses <- 0;
  t.engine_returns <- 0;
  t.chained_jumps <- 0;
  t.tb_translations <- 0;
  t.irqs_delivered <- 0;
  t.shadow_replays <- 0;
  t.shadow_divergences <- 0;
  t.rules_quarantined <- 0;
  t.quarantine_fallbacks <- 0;
  t.livelocks_recovered <- 0;
  t.regions_formed <- 0;
  Hashtbl.reset t.cov;
  t.cov_pending <- -1;
  t.cov_mark <- 0;
  t.cov_last_attr <- -1;
  t.cov_last <- None

let tag_index tag =
  let rec find i = function
    | [] -> assert false
    | hd :: tl -> if hd = tag then i else find (i + 1) tl
  in
  find 0 Insn.all_tags

let charge_tag t tag n =
  t.host_insns <- t.host_insns + n;
  t.by_tag.(tag_index tag) <- t.by_tag.(tag_index tag) + n

let tag_count t tag = t.by_tag.(tag_index tag)

(* ---- coverage attribution ---- *)

let cov_entry t attr =
  match t.cov_last with
  | Some e when t.cov_last_attr = attr -> e
  | _ ->
    let e =
      match Hashtbl.find_opt t.cov attr with
      | Some e -> e
      | None ->
        let e = { cn = 0; ccost = 0 } in
        Hashtbl.add t.cov attr e;
        e
    in
    t.cov_last_attr <- attr;
    t.cov_last <- Some e;
    e

let retire t attr =
  if t.cov_pending >= 0 then begin
    let d = t.host_insns - t.cov_mark in
    if d > 0 then begin
      let e = cov_entry t t.cov_pending in
      e.ccost <- e.ccost + d
    end
  end;
  t.guest_insns <- t.guest_insns + 1;
  let e = cov_entry t attr in
  e.cn <- e.cn + 1;
  t.cov_mark <- t.host_insns;
  t.cov_pending <- attr

let cov_entries t =
  Hashtbl.fold (fun attr e acc -> (attr, e.cn, e.ccost) :: acc) t.cov []
  |> List.sort compare

let cov_retired t = Hashtbl.fold (fun _ e acc -> acc + e.cn) t.cov 0
let cov_attributed t = Hashtbl.fold (fun _ e acc -> acc + e.ccost) t.cov 0
let cov_residual t = t.host_insns - t.cov_mark

let host_per_guest t =
  if t.guest_insns = 0 then 0. else float_of_int t.host_insns /. float_of_int t.guest_insns

let sync_per_guest t =
  if t.guest_insns = 0 then 0.
  else float_of_int (tag_count t Insn.Tag_sync) /. float_of_int t.guest_insns

let pp ppf t =
  Format.fprintf ppf
    "@[<v>host insns      %d@ guest insns     %d@ host/guest      %.2f@ " t.host_insns
    t.guest_insns (host_per_guest t);
  List.iter
    (fun tag ->
      Format.fprintf ppf "  %-10s    %d@ " (Insn.tag_name tag) (tag_count t tag))
    Insn.all_tags;
  Format.fprintf ppf
    "helper calls    %d (cost %d)@ sync ops        %d@ mmu accesses    %d (misses %d)@ \
     irq polls       %d (delivered %d)@ engine returns  %d@ chained jumps   %d@ \
     tb translations %d@]"
    t.helper_calls t.helper_insns t.sync_ops t.mmu_accesses t.tlb_misses t.irq_polls
    t.irqs_delivered t.engine_returns t.chained_jumps t.tb_translations;
  if t.shadow_replays > 0 || t.rules_quarantined > 0 || t.quarantine_fallbacks > 0 then
    Format.fprintf ppf
      "@ @[<v>shadow replays  %d (divergences %d)@ rules quarantined %d@ \
       quarantine fallbacks %d@]"
      t.shadow_replays t.shadow_divergences t.rules_quarantined t.quarantine_fallbacks;
  if t.livelocks_recovered > 0 then
    Format.fprintf ppf "@ livelocks recovered %d" t.livelocks_recovered

(* JSON exposition, hand-rolled over a Buffer so repro_x86 does not
   grow an observability dependency. Field names match the record. *)
let to_json t =
  let buf = Buffer.create 512 in
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf (Printf.sprintf "%S:%d" k v)
  in
  Buffer.add_char buf '{';
  field "host_insns" t.host_insns;
  List.iter
    (fun tag -> field ("host_" ^ Insn.tag_name tag) (tag_count t tag))
    Insn.all_tags;
  field "helper_insns" t.helper_insns;
  field "helper_calls" t.helper_calls;
  field "sys_insns" t.sys_insns;
  field "guest_insns" t.guest_insns;
  field "sync_ops" t.sync_ops;
  field "mmu_accesses" t.mmu_accesses;
  field "irq_polls" t.irq_polls;
  field "tlb_misses" t.tlb_misses;
  field "engine_returns" t.engine_returns;
  field "chained_jumps" t.chained_jumps;
  field "tb_translations" t.tb_translations;
  field "irqs_delivered" t.irqs_delivered;
  field "shadow_replays" t.shadow_replays;
  field "shadow_divergences" t.shadow_divergences;
  field "rules_quarantined" t.rules_quarantined;
  field "quarantine_fallbacks" t.quarantine_fallbacks;
  field "livelocks_recovered" t.livelocks_recovered;
  field "regions_formed" t.regions_formed;
  Buffer.add_string buf
    (Printf.sprintf ",\"host_per_guest\":%.6f,\"sync_per_guest\":%.6f}"
       (host_per_guest t) (sync_per_guest t));
  Buffer.contents buf

(* Snapshot support: every counter flattened in a fixed order (scalars
   first, then the by-tag array). Comparing two [to_array] dumps is
   the bit-identity check used by the restore tests. *)
let to_array t =
  let entries = cov_entries t in
  (* coverage tail: mark, pending+1 (kept nonnegative for the varint
     encoder), entry count, then (attr, retirements, cost) triples in
     ascending attr order — deterministic regardless of Hashtbl order. *)
  let cov =
    Array.of_list
      (t.cov_mark :: (t.cov_pending + 1)
      :: List.length entries
      :: List.concat_map (fun (a, n, c) -> [ a; n; c ]) entries)
  in
  Array.concat
    [
      [|
        t.host_insns; t.helper_insns; t.helper_calls; t.sys_insns; t.guest_insns;
        t.sync_ops; t.mmu_accesses; t.irq_polls; t.tlb_misses; t.engine_returns;
        t.chained_jumps; t.tb_translations; t.irqs_delivered; t.shadow_replays;
        t.shadow_divergences; t.rules_quarantined; t.quarantine_fallbacks;
        t.livelocks_recovered; t.regions_formed;
      |];
      Array.copy t.by_tag;
      cov;
    ]

let n_scalars = 19

let load_array t a =
  let base = n_scalars + n_tags in
  (if Array.length a < base + 3 then invalid_arg "Stats.load_array: bad length");
  let n_entries = a.(base + 2) in
  if Array.length a <> base + 3 + (3 * n_entries) then
    invalid_arg "Stats.load_array: bad length";
  Hashtbl.reset t.cov;
  t.cov_last_attr <- -1;
  t.cov_last <- None;
  t.cov_mark <- a.(base);
  t.cov_pending <- a.(base + 1) - 1;
  for i = 0 to n_entries - 1 do
    let o = base + 3 + (3 * i) in
    Hashtbl.replace t.cov a.(o) { cn = a.(o + 1); ccost = a.(o + 2) }
  done;
  t.host_insns <- a.(0);
  t.helper_insns <- a.(1);
  t.helper_calls <- a.(2);
  t.sys_insns <- a.(3);
  t.guest_insns <- a.(4);
  t.sync_ops <- a.(5);
  t.mmu_accesses <- a.(6);
  t.irq_polls <- a.(7);
  t.tlb_misses <- a.(8);
  t.engine_returns <- a.(9);
  t.chained_jumps <- a.(10);
  t.tb_translations <- a.(11);
  t.irqs_delivered <- a.(12);
  t.shadow_replays <- a.(13);
  t.shadow_divergences <- a.(14);
  t.rules_quarantined <- a.(15);
  t.quarantine_fallbacks <- a.(16);
  t.livelocks_recovered <- a.(17);
  t.regions_formed <- a.(18);
  Array.blit a n_scalars t.by_tag 0 n_tags
