type builder = {
  mutable rev_code : (Insn.t * Insn.tag) list;
  mutable next_label : int;
  mutable count : int;
}

let builder () = { rev_code = []; next_label = 0; count = 0 }

let is_pseudo = function
  | Insn.Label _ | Insn.Count _ -> true
  | Insn.Mov _ | Insn.Movzx8 _ | Insn.Movzx16 _ | Insn.Movsx8 _ | Insn.Movsx16 _
  | Insn.Lea _ | Insn.Alu _ | Insn.Neg _
  | Insn.Not _
  | Insn.Imul _ | Insn.Shift _ | Insn.Setcc _ | Insn.Cmovcc _ | Insn.Jcc _ | Insn.Jmp _
  | Insn.Savef _ | Insn.Loadf _ | Insn.Call_helper _ | Insn.Exit _ -> false

let emit b ?(tag = Insn.Tag_compute) insn =
  b.rev_code <- (insn, tag) :: b.rev_code;
  if not (is_pseudo insn) then b.count <- b.count + 1

let emit_all b ?tag insns = List.iter (fun i -> emit b ?tag i) insns

(* Rewrite the payload of the most recently emitted retirement
   counter. Used by the emitter's fallback path to re-attribute the
   current guest instruction (e.g. to the helper-assisted tier) after
   its [Count] has already been placed — patching the one emission
   site is drift-proof where mirroring the dispatch logic would not
   be. *)
let repatch_last_retire b f =
  let rec go acc = function
    | [] -> ()  (* no retirement emitted yet: nothing to re-attribute *)
    | (Insn.Count (Insn.Cnt_guest_insn attr), tag) :: tl ->
      b.rev_code <-
        List.rev_append acc ((Insn.Count (Insn.Cnt_guest_insn (f attr)), tag) :: tl)
    | hd :: tl -> go (hd :: acc) tl
  in
  go [] b.rev_code

let fresh_label b =
  let l = b.next_label in
  b.next_label <- l + 1;
  l

let bind_label b l = emit b (Insn.Label l)
let length b = b.count

type t = {
  code : Insn.t array;
  tags : Insn.tag array;
  label_index : (int, int) Hashtbl.t;
}

let finalize b =
  let items = Array.of_list (List.rev b.rev_code) in
  let code = Array.map fst items in
  let tags = Array.map snd items in
  let label_index = Hashtbl.create 16 in
  Array.iteri
    (fun i insn ->
      match insn with Insn.Label l -> Hashtbl.replace label_index l i | _ -> ())
    code;
  { code; tags; label_index }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label _ -> Format.fprintf ppf "%a@ " Insn.pp insn
      | _ -> Format.fprintf ppf "  %3d: %a@ " i Insn.pp insn)
    t.code;
  Format.fprintf ppf "@]"

let static_count t =
  Array.fold_left (fun acc i -> if is_pseudo i then acc else acc + 1) 0 t.code
