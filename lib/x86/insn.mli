(** The host instruction model: an x86-64-flavoured register machine
    operating on 32-bit values.

    Both DBT backends emit this instruction set into translation
    blocks; the {!Exec} interpreter executes it while counting
    dynamically executed instructions — the paper's performance
    metric. The register file has 16 GPRs (the paper's 32-bit host has
    8; see DESIGN.md for why we widen it), and EFLAGS carries
    CF/ZF/SF/OF.

    Memory operands address one of three segments: the guest-state
    [Env] structure (QEMU's [CPUARMState]), the guest physical [Ram],
    and the softMMU [Tlb] table — exactly the data structures QEMU's
    emitted code touches. *)

type reg = int
(** 0..15: rax rcx rdx rbx rsp rbp rsi rdi r8..r15. *)

val rax : reg
val rcx : reg
val rdx : reg
val rbx : reg
val rsp : reg
val rbp : reg
(** By convention [rbp] holds the env base pointer in emitted code. *)

val rsi : reg
val rdi : reg
val r8 : reg
val r9 : reg
val r10 : reg
val r11 : reg
val r12 : reg
val r13 : reg
val r14 : reg
val r15 : reg
val reg_name : reg -> string

type seg =
  | Env  (** guest CPU state structure; disp/computed = byte offset *)
  | Ram  (** guest physical memory *)
  | Tlb  (** softMMU TLB entries *)

type mem = { seg : seg; base : reg option; index : reg option; scale : int; disp : int }

val env_slot : int -> mem
(** [env_slot i] — direct access to 32-bit env slot [i]. *)

type operand = Reg of reg | Imm of int | Mem of mem

type alu_op = Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test

type shift_op = Shl | Shr | Sar | Ror

(** x86 condition codes over CF/ZF/SF/OF. *)
type cc = E | NE | B | AE | S | NS | O | NO | A | BE | GE | L | G | LE

val cc_name : cc -> string
val cc_negate : cc -> cc

type width = W8 | W16 | W32

(** One host instruction. [Label] is a zero-cost pseudo-op; branch
    targets are label ids local to the translation block. *)
type t =
  | Label of int
  | Mov of { width : width; dst : operand; src : operand }
  | Movzx8 of { dst : reg; src : operand }  (** byte load/reg zero-extended *)
  | Movzx16 of { dst : reg; src : operand }  (** halfword load/reg zero-extended *)
  | Movsx8 of { dst : reg; src : operand }  (** byte load/reg sign-extended *)
  | Movsx16 of { dst : reg; src : operand }  (** halfword load/reg sign-extended *)
  | Lea of { dst : reg; addr : mem }
  | Alu of { op : alu_op; dst : operand; src : operand }
  | Neg of operand
  | Not of operand
  | Imul of { dst : reg; src : operand }
  | Shift of { op : shift_op; dst : operand; amount : shift_amount }
  | Setcc of { cc : cc; dst : reg }  (** dst := 0/1, flags preserved *)
  | Cmovcc of { cc : cc; dst : reg; src : operand }
  | Jcc of { cc : cc; target : int }
  | Jmp of int
  | Savef of reg
      (** Pack EFLAGS into a register as ARM-layout NZCV in bits
          31..28 (lahf/seto-style, one-instruction model). *)
  | Loadf of reg
      (** Unpack an ARM-layout NZCV word into EFLAGS (N→SF, Z→ZF,
          C→CF, V→OF). *)
  | Call_helper of { id : int }
      (** Transfer to a QEMU helper. Arguments are in rdi/rsi/rdx/rcx,
          the result in rax. All registers except rbp/rsp are
          clobbered on return — the interpreter deliberately poisons
          them so that missing CPU-state coordination is caught by
          differential tests, not hidden. *)
  | Exit of { slot : int }
      (** End of TB: give control back to the execution engine through
          exit slot [slot] (chainable). *)
  | Count of counter
      (** Zero-cost measurement marker bumping a dynamic counter; used
          for retired-guest-instruction and coordination-operation
          counts (the denominators/numerators of Figs. 15 and 17). *)

and shift_amount = Sh_imm of int | Sh_cl  (** count in CL (rcx & 31) *)

and counter =
  | Cnt_guest_insn of int
      (** retire one guest instruction; the argument is the packed
          coverage-attribution word (see {!Repro_covscope.Attr}):
          translation tier in the low bits, opcode class / idiom /
          rule id above. [Stats.retire] decodes it. *)
  | Cnt_sync_op
  | Cnt_mmu_access
  | Cnt_irq_poll

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Stats category an emitted instruction is charged to. The paper's
    Fig. 17 reports the [Sync] fraction; Fig. 15 the total. *)
type tag =
  | Tag_compute   (** translated guest computation *)
  | Tag_sync      (** CPU-state coordination (Sync-save/Sync-restore) *)
  | Tag_mmu       (** inline address-translation fast path *)
  | Tag_irq_check (** TB-head interrupt polling *)
  | Tag_glue      (** prologue/epilogue, chaining, condition re-eval *)

val tag_name : tag -> string
val all_tags : tag list
