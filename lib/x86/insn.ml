type reg = int

let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let reg_name r =
  match r with
  | 0 -> "rax"
  | 1 -> "rcx"
  | 2 -> "rdx"
  | 3 -> "rbx"
  | 4 -> "rsp"
  | 5 -> "rbp"
  | 6 -> "rsi"
  | 7 -> "rdi"
  | n -> Printf.sprintf "r%d" n

type seg = Env | Ram | Tlb

let seg_name = function Env -> "env" | Ram -> "ram" | Tlb -> "tlb"

type mem = { seg : seg; base : reg option; index : reg option; scale : int; disp : int }

let env_slot i = { seg = Env; base = None; index = None; scale = 1; disp = 4 * i }

type operand = Reg of reg | Imm of int | Mem of mem
type alu_op = Add | Adc | Sub | Sbb | And | Or | Xor | Cmp | Test
type shift_op = Shl | Shr | Sar | Ror
type cc = E | NE | B | AE | S | NS | O | NO | A | BE | GE | L | G | LE

let cc_name = function
  | E -> "e"
  | NE -> "ne"
  | B -> "b"
  | AE -> "ae"
  | S -> "s"
  | NS -> "ns"
  | O -> "o"
  | NO -> "no"
  | A -> "a"
  | BE -> "be"
  | GE -> "ge"
  | L -> "l"
  | G -> "g"
  | LE -> "le"

let cc_negate = function
  | E -> NE
  | NE -> E
  | B -> AE
  | AE -> B
  | S -> NS
  | NS -> S
  | O -> NO
  | NO -> O
  | A -> BE
  | BE -> A
  | GE -> L
  | L -> GE
  | G -> LE
  | LE -> G

type width = W8 | W16 | W32

type t =
  | Label of int
  | Mov of { width : width; dst : operand; src : operand }
  | Movzx8 of { dst : reg; src : operand }
  | Movzx16 of { dst : reg; src : operand }
  | Movsx8 of { dst : reg; src : operand }
  | Movsx16 of { dst : reg; src : operand }
  | Lea of { dst : reg; addr : mem }
  | Alu of { op : alu_op; dst : operand; src : operand }
  | Neg of operand
  | Not of operand
  | Imul of { dst : reg; src : operand }
  | Shift of { op : shift_op; dst : operand; amount : shift_amount }
  | Setcc of { cc : cc; dst : reg }
  | Cmovcc of { cc : cc; dst : reg; src : operand }
  | Jcc of { cc : cc; target : int }
  | Jmp of int
  | Savef of reg
  | Loadf of reg
  | Call_helper of { id : int }
  | Exit of { slot : int }
  | Count of counter

and shift_amount = Sh_imm of int | Sh_cl

and counter =
  | Cnt_guest_insn of int
      (** retire one guest instruction; the argument is the packed
          coverage-attribution word (see {!Repro_covscope.Attr}):
          translation tier in the low bits, opcode class / idiom /
          rule id above. [Stats.retire] decodes it. *)
  | Cnt_sync_op
  | Cnt_mmu_access
  | Cnt_irq_poll

let alu_name = function
  | Add -> "add"
  | Adc -> "adc"
  | Sub -> "sub"
  | Sbb -> "sbb"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Cmp -> "cmp"
  | Test -> "test"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Ror -> "ror"

let pp_mem ppf { seg; base; index; scale; disp } =
  let parts = ref [] in
  (match index with
  | Some i ->
    parts := (if scale = 1 then reg_name i else Printf.sprintf "%s*%d" (reg_name i) scale) :: !parts
  | None -> ());
  (match base with Some b -> parts := reg_name b :: !parts | None -> ());
  let inner = String.concat " + " !parts in
  if inner = "" then Format.fprintf ppf "%s:[%#x]" (seg_name seg) disp
  else if disp = 0 then Format.fprintf ppf "%s:[%s]" (seg_name seg) inner
  else Format.fprintf ppf "%s:[%s %+d]" (seg_name seg) inner disp

let pp_operand ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name r)
  | Imm n -> Format.fprintf ppf "$%#x" (n land 0xFFFFFFFF)
  | Mem m -> pp_mem ppf m

let pp ppf = function
  | Label n -> Format.fprintf ppf ".L%d:" n
  | Mov { width; dst; src } ->
    Format.fprintf ppf "mov%s %a, %a"
      (match width with W8 -> "b" | W16 -> "w" | W32 -> "l")
      pp_operand dst pp_operand src
  | Movzx8 { dst; src } ->
    Format.fprintf ppf "movzxb %s, %a" (reg_name dst) pp_operand src
  | Movzx16 { dst; src } ->
    Format.fprintf ppf "movzxw %s, %a" (reg_name dst) pp_operand src
  | Movsx8 { dst; src } ->
    Format.fprintf ppf "movsxb %s, %a" (reg_name dst) pp_operand src
  | Movsx16 { dst; src } ->
    Format.fprintf ppf "movsxw %s, %a" (reg_name dst) pp_operand src
  | Lea { dst; addr } -> Format.fprintf ppf "lea %s, %a" (reg_name dst) pp_mem addr
  | Alu { op; dst; src } ->
    Format.fprintf ppf "%sl %a, %a" (alu_name op) pp_operand dst pp_operand src
  | Neg o -> Format.fprintf ppf "negl %a" pp_operand o
  | Not o -> Format.fprintf ppf "notl %a" pp_operand o
  | Imul { dst; src } -> Format.fprintf ppf "imull %s, %a" (reg_name dst) pp_operand src
  | Shift { op; dst; amount } ->
    Format.fprintf ppf "%sl %a, %s" (shift_name op) pp_operand dst
      (match amount with Sh_imm n -> Printf.sprintf "$%d" n | Sh_cl -> "cl")
  | Setcc { cc; dst } -> Format.fprintf ppf "set%s %s" (cc_name cc) (reg_name dst)
  | Cmovcc { cc; dst; src } ->
    Format.fprintf ppf "cmov%s %s, %a" (cc_name cc) (reg_name dst) pp_operand src
  | Jcc { cc; target } -> Format.fprintf ppf "j%s .L%d" (cc_name cc) target
  | Jmp target -> Format.fprintf ppf "jmp .L%d" target
  | Savef r -> Format.fprintf ppf "savef %s" (reg_name r)
  | Loadf r -> Format.fprintf ppf "loadf %s" (reg_name r)
  | Call_helper { id } -> Format.fprintf ppf "call helper_%d" id
  | Exit { slot } -> Format.fprintf ppf "exit %d" slot
  | Count c ->
    Format.fprintf ppf "#count %s"
      (match c with
      | Cnt_guest_insn attr -> Printf.sprintf "guest_insn %d" attr
      | Cnt_sync_op -> "sync_op"
      | Cnt_mmu_access -> "mmu_access"
      | Cnt_irq_poll -> "irq_poll")

let to_string t = Format.asprintf "%a" pp t

type tag = Tag_compute | Tag_sync | Tag_mmu | Tag_irq_check | Tag_glue

let tag_name = function
  | Tag_compute -> "compute"
  | Tag_sync -> "sync"
  | Tag_mmu -> "mmu"
  | Tag_irq_check -> "irq_check"
  | Tag_glue -> "glue"

let all_tags = [ Tag_compute; Tag_sync; Tag_mmu; Tag_irq_check; Tag_glue ]
