(** Dynamic execution counters — the measurement substrate for every
    figure in the paper's evaluation. *)

type cov_entry = { mutable cn : int; mutable ccost : int }
(** One row of the coverage-attribution table: dynamic retirements
    ([cn]) and attributed host-instruction cost ([ccost]) of one
    packed attribution word (see [Repro_covscope.Attr]). *)

type t = {
  mutable host_insns : int;
      (** Dynamically executed host instructions, including modelled
          helper costs. *)
  by_tag : int array;  (** indexed by {!Insn.tag} order of {!Insn.all_tags} *)
  mutable helper_insns : int;
      (** Portion of [host_insns] contributed by helper bodies. *)
  mutable helper_calls : int;
  mutable sys_insns : int;
      (** executed guest system-level instructions (helper-emulated) *)
  mutable guest_insns : int;  (** retired guest instructions *)
  mutable sync_ops : int;     (** coordination operations executed *)
  mutable mmu_accesses : int; (** memory accesses through the softMMU *)
  mutable irq_polls : int;    (** interrupt checks executed *)
  mutable tlb_misses : int;
  mutable engine_returns : int;
      (** TB exits that went back to the execution engine (context
          switches to QEMU, in the paper's terms), excluding helper
          calls. *)
  mutable chained_jumps : int; (** TB-to-TB transfers via block chaining *)
  mutable tb_translations : int;
  mutable irqs_delivered : int;
  mutable shadow_replays : int;
      (** completed shadow-verification comparisons of rule TBs *)
  mutable shadow_divergences : int;
      (** comparisons where translated execution differed from the
          reference replay (state was repaired from the replay) *)
  mutable rules_quarantined : int;
      (** rules newly quarantined by accumulated divergence strikes *)
  mutable quarantine_fallbacks : int;
      (** translations of blacklisted PCs routed to the baseline
          translator *)
  mutable livelocks_recovered : int;
      (** host-loop livelocks recovered by the watchdog (checkpoint
          rollback + degraded re-execution) *)
  mutable regions_formed : int;
      (** hot-region superblocks fused and installed in the code cache *)
  cov : (int, cov_entry) Hashtbl.t;
      (** translation-quality observatory: always-on per-attribution
          retirement counts and host-insn costs, keyed by the packed
          [Cnt_guest_insn] payload *)
  mutable cov_pending : int;
      (** attribution currently accruing host-insn cost; [-1] before
          the first retirement *)
  mutable cov_mark : int;  (** [host_insns] at the last retirement *)
  mutable cov_last_attr : int;  (** internal lookup-cache key *)
  mutable cov_last : cov_entry option;  (** internal lookup cache *)
}

val create : unit -> t
val reset : t -> unit
val charge_tag : t -> Insn.tag -> int -> unit
(** Add [n] host instructions under a tag (and to the total). *)

val tag_count : t -> Insn.tag -> int

val retire : t -> int -> unit
(** Retire one guest instruction under a packed attribution word: the
    host-insn cost accrued since the previous retirement is charged to
    the previous attribution, then the retirement is counted under the
    new one. Increments [guest_insns] — this is its only increment
    site, so the per-attribution counts partition it structurally. *)

val cov_entries : t -> (int * int * int) list
(** All [(attr, retirements, cost)] rows, sorted by attribution word. *)

val cov_retired : t -> int
(** Sum of per-attribution retirements (equals [guest_insns]). *)

val cov_attributed : t -> int
(** Sum of per-attribution costs; [host_insns - cov_attributed] is the
    untracked prologue/epilogue overhead plus the open tail. *)

val cov_residual : t -> int
(** Host insns since the last retirement — the open accrual window,
    reported without being charged (keeps reading side-effect-free). *)

val host_per_guest : t -> float
val sync_per_guest : t -> float
(** Sync-tagged host instructions per retired guest instruction —
    the paper's Fig. 17 metric. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One flat JSON object: every counter (per-tag host instructions as
    [host_<tag>]) plus derived [host_per_guest]/[sync_per_guest]
    ratios.  The machine-readable sibling of {!pp}. *)

val to_array : t -> int array
(** Every counter flattened in a fixed, documented order (snapshot
    payload; also the equality witness in restore bit-identity tests). *)

val load_array : t -> int array -> unit
(** Restore counters captured by {!to_array}. Raises
    [Invalid_argument] on length mismatch. *)
