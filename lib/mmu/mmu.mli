(** Guest memory management: two-level page tables, the softMMU TLB
    shared between the execution engines, and the reference-machine
    memory interface.

    Page-table format (simplified two-level, documented in DESIGN.md):
    TTBR points to a 4 KiB-aligned L1 table of 1024 word entries
    indexed by [va\[31:22\]]; a valid L1 entry (bit 0) holds the L2
    table base in bits 31:12. L2 entries, indexed by [va\[21:12\]],
    hold the physical page in bits 31:12 plus VALID (bit 0), WRITABLE
    (bit 1) and USER (bit 2) permission bits. *)

open Repro_common

val page_size : int
val page_mask : int
(** 0xFFFFF000. *)

(** {2 Page-table entries} *)

val l1_entry : l2_base:Word32.t -> Word32.t
val l2_entry : pa:Word32.t -> writable:bool -> user:bool -> Word32.t

type entry = { page_pa : Word32.t; writable : bool; user : bool }

val walk : Repro_machine.Bus.t -> ttbr:Word32.t -> Word32.t -> (entry, Repro_arm.Mem.fault_kind) result
(** Translate the page containing a virtual address. Returns
    [Translation] when an entry is invalid and [Bus] when a table
    address falls outside RAM. Permission checking is the caller's
    job (it depends on access type and privilege). *)

val check_perms :
  entry -> access:Repro_arm.Mem.access -> privileged:bool ->
  (unit, Repro_arm.Mem.fault_kind) result

(** {2 The softMMU TLB}

    A direct-mapped TLB with {!Tlb.entries} sets per privilege bank,
    laid out in a flat [int array] so DBT-emitted host code can probe
    it inline. Each set is 4 words: READ_TAG, WRITE_TAG, PADDR, spare.
    An invalid tag is [0xFFFFFFFF] (never equal to a page-aligned
    virtual address). *)

module Tlb : sig
  val entries : int
  (** Sets per bank (256). *)

  val stride_words : int
  (** Words per set (4). *)

  val words : int
  (** Total array size: 2 banks × entries × stride. *)

  val bank_offset_words : privileged:bool -> int
  val index : Word32.t -> int
  (** Set index of a virtual address. *)

  val set_base_words : privileged:bool -> Word32.t -> int
  (** Word offset of the set for a virtual address. *)

  val invalid_tag : int

  val flush : int array -> unit

  val fill : int array -> privileged:bool -> vaddr:Word32.t -> entry -> unit
  (** Install a translation for the page of [vaddr]; the WRITE_TAG is
      only set when the entry is writable (and, in the user bank, when
      it is user-accessible — non-user pages are never filled in the
      user bank at all). *)

  val lookup :
    int array -> privileged:bool -> write:bool -> Word32.t -> Word32.t option
  (** Fast-path probe: physical address on hit. *)

  val clear_write_tag : int array -> Word32.t -> unit
  (** Drop the write entry for the page of a virtual address in both
      banks (write-protecting translated code so self-modifying stores
      always take the slow path). *)

  val save : int array -> int array
  (** Bit-exact copy of the softMMU state (machine snapshots). *)

  val restore : int array -> int array -> unit
  (** [restore tlb saved] writes a {!save}d capture back in place.
      Raises [Invalid_argument] on size mismatch. *)
end

(** {2 Reference-machine memory interface} *)

val translate :
  Repro_machine.Bus.t -> Repro_arm.Cpu.t -> Word32.t ->
  access:Repro_arm.Mem.access -> privileged:bool ->
  (Word32.t, Repro_arm.Mem.fault) result
(** Pure virtual→physical translation under the CPU's current MMU
    configuration (identity when the MMU is off); performs no access.
    Used by shadow verification to resolve guest addresses without
    touching devices. *)

val iface :
  ?inject:Repro_faultinject.Faultinject.t ->
  Repro_machine.Bus.t -> Repro_arm.Cpu.t -> Repro_arm.Mem.iface
(** The {!Repro_arm.Mem.iface} of the full system as the reference
    interpreter sees it: translation when the CPU's MMU is enabled,
    permission checks by current privilege, device dispatch through
    the bus. Performs a fresh page walk per access (no TLB), which
    keeps it trivially correct for differential testing.

    [inject], when given, exercises the [Walk_corrupt] fault point:
    a fired fault models a corrupted walk result that is detected and
    re-walked — guest-invisible by construction. *)
