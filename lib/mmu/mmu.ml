open Repro_common
module Bus = Repro_machine.Bus
module Mem = Repro_arm.Mem
module Cpu = Repro_arm.Cpu

let page_size = 4096
let page_mask = 0xFFFFF000

let l1_entry ~l2_base = (l2_base land page_mask) lor 1

let l2_entry ~pa ~writable ~user =
  (pa land page_mask) lor 1
  lor (if writable then 2 else 0)
  lor if user then 4 else 0

type entry = { page_pa : Word32.t; writable : bool; user : bool }

let walk bus ~ttbr vaddr =
  let l1_index = (vaddr lsr 22) land 0x3FF in
  let l1_addr = (ttbr land page_mask) + (4 * l1_index) in
  match Bus.read32 bus l1_addr with
  | Error () -> Error Mem.Bus
  | Ok l1 ->
    if l1 land 1 = 0 then Error Mem.Translation
    else
      let l2_index = (vaddr lsr 12) land 0x3FF in
      let l2_addr = (l1 land page_mask) + (4 * l2_index) in
      (match Bus.read32 bus l2_addr with
      | Error () -> Error Mem.Bus
      | Ok l2 ->
        if l2 land 1 = 0 then Error Mem.Translation
        else
          Ok
            {
              page_pa = l2 land page_mask;
              writable = l2 land 2 <> 0;
              user = l2 land 4 <> 0;
            })

let check_perms entry ~access ~privileged =
  if (not privileged) && not entry.user then Error Mem.Permission
  else
    match access with
    | Mem.Store -> if entry.writable then Ok () else Error Mem.Permission
    | Mem.Load | Mem.Fetch -> Ok ()

module Tlb = struct
  let entries = 256
  let stride_words = 4
  let words = 2 * entries * stride_words
  let bank_offset_words ~privileged = if privileged then entries * stride_words else 0
  let index vaddr = (vaddr lsr 12) land (entries - 1)

  let set_base_words ~privileged vaddr =
    bank_offset_words ~privileged + (index vaddr * stride_words)

  let invalid_tag = 0xFFFFFFFF

  let flush tlb = Array.fill tlb 0 (Array.length tlb) invalid_tag

  let fill tlb ~privileged ~vaddr entry =
    if privileged || entry.user then begin
      let base = set_base_words ~privileged vaddr in
      let tag = vaddr land page_mask in
      tlb.(base) <- tag;
      tlb.(base + 1) <- (if entry.writable then tag else invalid_tag);
      tlb.(base + 2) <- entry.page_pa
    end

  (* Snapshot support: the softMMU array is plain data, so a copy is a
     complete, bit-exact capture of every cached translation and
     write-protection tag. *)
  let save tlb = Array.copy tlb

  let restore tlb saved =
    if Array.length saved <> Array.length tlb then
      invalid_arg "Tlb.restore: size mismatch";
    Array.blit saved 0 tlb 0 (Array.length tlb)

  let clear_write_tag tlb vaddr =
    List.iter
      (fun privileged ->
        let base = set_base_words ~privileged vaddr in
        if tlb.(base) = vaddr land page_mask || tlb.(base + 1) = vaddr land page_mask
        then tlb.(base + 1) <- invalid_tag)
      [ false; true ]

  let lookup tlb ~privileged ~write vaddr =
    let base = set_base_words ~privileged vaddr in
    let tag = vaddr land page_mask in
    let stored = if write then tlb.(base + 1) else tlb.(base) in
    if stored = tag then Some (tlb.(base + 2) lor (vaddr land (page_size - 1)))
    else None
end

let translate bus cpu vaddr ~access ~privileged =
  if not (Cpu.mmu_enabled cpu) then Ok vaddr
  else
    match walk bus ~ttbr:(Cpu.get_ttbr cpu) vaddr with
    | Error kind -> Error { Mem.vaddr; access; kind }
    | Ok entry -> (
      match check_perms entry ~access ~privileged with
      | Error kind -> Error { Mem.vaddr; access; kind }
      | Ok () -> Ok (entry.page_pa lor (vaddr land (page_size - 1))))

let iface ?inject bus cpu : Mem.iface =
  (* With an injector armed, a walk result can come back corrupted; the
     corruption is detected (modelled table-entry parity) and the walk
     is simply redone — guest-invisible, cost-only. *)
  let xlate vaddr ~access ~privileged =
    let r = translate bus cpu vaddr ~access ~privileged in
    match inject with
    | Some inj
      when Cpu.mmu_enabled cpu
           && Repro_faultinject.Faultinject.fire inj
                Repro_faultinject.Faultinject.Walk_corrupt ->
      translate bus cpu vaddr ~access ~privileged
    | _ -> r
  in
  let load width ~privileged vaddr =
    let aligned =
      match width with
      | Mem.W8 -> true
      | Mem.W16 -> vaddr land 1 = 0
      | Mem.W32 -> vaddr land 3 = 0
    in
    if not aligned then Error { Mem.vaddr; access = Mem.Load; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Load ~privileged with
      | Error f -> Error f
      | Ok paddr -> (
        let r =
          match width with
          | Mem.W8 -> Result.map (fun b -> b) (Bus.read8 bus paddr)
          | Mem.W16 -> (
            (* RAM-backed halves; devices are word-addressed, so a
               halfword MMIO access surfaces as a bus error *)
            match (Bus.read8 bus paddr, Bus.read8 bus (paddr + 1)) with
            | Ok lo, Ok hi -> Ok (lo lor (hi lsl 8))
            | Error (), _ | _, Error () -> Error ())
          | Mem.W32 -> Bus.read32 bus paddr
        in
        match r with
        | Ok v -> Ok v
        | Error () -> Error { Mem.vaddr; access = Mem.Load; kind = Mem.Bus })
  in
  let store width ~privileged vaddr v =
    let aligned =
      match width with
      | Mem.W8 -> true
      | Mem.W16 -> vaddr land 1 = 0
      | Mem.W32 -> vaddr land 3 = 0
    in
    if not aligned then Error { Mem.vaddr; access = Mem.Store; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Store ~privileged with
      | Error f -> Error f
      | Ok paddr -> (
        let r =
          match width with
          | Mem.W8 -> Bus.write8 bus paddr v
          | Mem.W16 -> (
            match Bus.write8 bus paddr (v land 0xFF) with
            | Ok () -> Bus.write8 bus (paddr + 1) ((v lsr 8) land 0xFF)
            | Error () -> Error ())
          | Mem.W32 -> Bus.write32 bus paddr v
        in
        match r with
        | Ok () -> Ok ()
        | Error () -> Error { Mem.vaddr; access = Mem.Store; kind = Mem.Bus })
  in
  let fetch ~privileged vaddr =
    if vaddr land 3 <> 0 then
      Error { Mem.vaddr; access = Mem.Fetch; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Fetch ~privileged with
      | Error f -> Error f
      | Ok paddr -> (
        match Bus.read32 bus paddr with
        | Ok v -> Ok v
        | Error () -> Error { Mem.vaddr; access = Mem.Fetch; kind = Mem.Bus })
  in
  { Mem.load; store; fetch; flush_tlb = (fun () -> ()) }
