open Repro_minic.Ast

(* Globally unique line numbers (nested blocks must not collide with
   outer ones, or the extractor would pair unrelated fragments). The
   numbering state lives inside this one module-initialisation
   expression: it runs exactly once, before any domain is spawned, and
   no mutable state escapes into the built corpus. *)
let programs =
  let counter = ref 0 in
  let stmts body =
    List.map
      (fun b ->
        incr counter;
        { line = !counter; body = b })
      body
  in
  let p name locals body = { name; locals; body = stmts body } in
  [
    p "arith_basic" [ "a"; "b"; "c" ]
      [
        Assign ("a", i 7);
        Assign ("b", i 9);
        Assign ("c", v "a" + v "b");
        Assign ("c", v "c" - v "a");
        Assign ("c", v "c" + i 3);
        Assign ("a", v "b" - i 4);
        Assign ("b", v "b" + v "b");
      ];
    p "logic_ops" [ "x"; "y"; "z" ]
      [
        Assign ("x", i 0xF0);
        Assign ("y", i 0x3C);
        Assign ("z", v "x" &&& v "y");
        Assign ("z", v "x" ||| v "y");
        Assign ("z", v "x" ^^^ v "y");
        Assign ("x", v "x" &&& i 15);
        Assign ("y", v "y" ||| i 0xF0);
        Assign ("z", v "z" ^^^ i 1);
      ];
    p "shifts" [ "x"; "y" ]
      [
        Assign ("x", i 0x1234);
        Assign ("y", v "x" <<< 4);
        Assign ("y", v "x" >>> 3);
        Assign ("y", Binop (Asr, v "x", i 2));
        Assign ("x", (v "x" <<< 1) + v "y");
        Assign ("y", (v "x" >>> 8) &&& i 0xFF);
      ];
    p "multiply" [ "a"; "b"; "c" ]
      [
        Assign ("a", i 6);
        Assign ("b", i 7);
        Assign ("c", v "a" * v "b");
        Assign ("c", (v "a" * v "b") + v "c");
        Assign ("a", v "c" * v "c");
      ];
    p "unary" [ "m"; "n" ]
      [
        Assign ("m", i 25);
        Assign ("n", Unop (Neg, v "m"));
        Assign ("n", Unop (Not, v "m"));
        Assign ("m", Unop (Neg, v "n") + i 1);
        Assign ("n", Unop (Not, v "m") &&& i 0xFF);
      ];
    p "big_constants" [ "k"; "l" ]
      [
        Assign ("k", i 0x12345678);
        Assign ("l", i 0xDEAD0000);
        Assign ("k", v "k" + i 0x10000);
        Assign ("l", v "l" ||| i 0xBE);
        Assign ("k", v "k" ^^^ v "l");
      ];
    p "aliasing" [ "a"; "b" ]
      [
        Assign ("a", i 5);
        Assign ("b", i 11);
        Assign ("a", v "a" + v "b");
        Assign ("a", v "a" + v "a");
        Assign ("b", v "b" - v "b");
        Assign ("a", v "a" &&& v "a");
      ];
    p "compare_signed" [ "a"; "b"; "r" ]
      [
        Assign ("a", i 3);
        Assign ("b", i 8);
        Assign ("r", i 0);
        If (Rel (Slt, v "a", v "b"), stmts [ Assign ("r", v "r" + i 1) ], []);
        If (Rel (Sge, v "a", v "b"), stmts [ Assign ("r", v "r" + i 2) ],
            stmts [ Assign ("r", v "r" + i 4) ]);
        If (Rel (Sgt, v "b", i 5), stmts [ Assign ("r", v "r" + i 8) ], []);
        If (Rel (Sle, v "a", i 3), stmts [ Assign ("r", v "r" + i 16) ], []);
      ];
    p "compare_unsigned" [ "a"; "b"; "r" ]
      [
        Assign ("a", i 0xF0000000);
        Assign ("b", i 16);
        Assign ("r", i 0);
        If (Rel (Ult, v "b", v "a"), stmts [ Assign ("r", v "r" + i 1) ], []);
        If (Rel (Uge, v "a", v "b"), stmts [ Assign ("r", v "r" + i 2) ], []);
        If (Rel (Eq, v "b", i 16), stmts [ Assign ("r", v "r" + i 4) ], []);
        If (Rel (Ne, v "a", v "b"), stmts [ Assign ("r", v "r" + i 8) ], []);
      ];
    p "while_sum" [ "n"; "acc" ]
      [
        Assign ("n", i 50);
        Assign ("acc", i 0);
        While
          ( Rel (Ne, v "n", i 0),
            stmts [ Assign ("acc", v "acc" + v "n"); Assign ("n", v "n" - i 1) ] );
      ];
    p "while_bits" [ "x"; "count" ]
      [
        Assign ("x", i 0xB7);
        Assign ("count", i 0);
        While
          ( Rel (Ne, v "x", i 0),
            stmts
              [
                Assign ("count", v "count" + (v "x" &&& i 1));
                Assign ("x", v "x" >>> 1);
              ] );
      ];
    p "nested_expr" [ "a"; "b"; "c"; "d" ]
      [
        Assign ("a", i 3);
        Assign ("b", i 4);
        Assign ("c", ((v "a" + v "b") * (v "a" - i 1)) + (v "b" <<< 2));
        Assign ("d", (v "c" &&& i 0xFC) ||| (v "a" ^^^ v "b"));
        Assign ("c", (v "c" >>> 2) * (v "d" + i 1));
      ];
    p "fib" [ "n"; "a"; "b"; "t" ]
      [
        Assign ("n", i 15);
        Assign ("a", i 0);
        Assign ("b", i 1);
        While
          ( Rel (Sgt, v "n", i 0),
            stmts
              [
                Assign ("t", v "a" + v "b");
                Assign ("a", v "b");
                Assign ("b", v "t");
                Assign ("n", v "n" - i 1);
              ] );
      ];
    p "gcd" [ "a"; "b"; "t" ]
      [
        Assign ("a", i 1071);
        Assign ("b", i 462);
        While
          ( Rel (Ne, v "b", i 0),
            stmts
              [
                (* a mod b via repeated subtraction (no division) *)
                While (Rel (Uge, v "a", v "b"), stmts [ Assign ("a", v "a" - v "b") ]);
                Assign ("t", v "a");
                Assign ("a", v "b");
                Assign ("b", v "t");
              ] );
      ];
    p "fused_shifts" [ "a"; "b"; "c" ]
      [
        Assign ("a", i 0x1234);
        Assign ("b", i 3);
        Assign ("c", v "a" + (v "b" <<< 4));
        Assign ("c", v "c" - (v "a" >>> 2));
        Assign ("c", v "c" ^^^ (v "b" <<< 7));
        Assign ("a", v "c" &&& (v "a" >>> 1));
        Assign ("b", v "b" ||| (v "c" <<< 2));
        Assign ("c", v "c" + Binop (Asr, v "a", i 3));
      ];
    p "address_arith" [ "base"; "idx"; "p" ]
      [
        Assign ("base", i 0x4000);
        Assign ("idx", i 12);
        Assign ("p", v "base" + (v "idx" <<< 2));
        Assign ("p", v "p" + i 4);
        Assign ("idx", v "idx" + i 1);
        Assign ("p", v "base" + (v "idx" <<< 2));
      ];
    p "mix_checksum" [ "h"; "x"; "n" ]
      [
        Assign ("h", i 0x811C);
        Assign ("x", i 0xABCD);
        Assign ("n", i 20);
        While
          ( Rel (Ne, v "n", i 0),
            stmts
              [
                Assign ("h", v "h" ^^^ v "x");
                Assign ("h", v "h" * i 31);
                Assign ("x", (v "x" <<< 1) ||| (v "x" >>> 31));
                Assign ("n", v "n" - i 1);
              ] );
      ];
    p "variable_shifts" [ "x"; "k"; "y" ]
      [
        Assign ("x", i 0x8765);
        Assign ("k", i 5);
        Assign ("y", Binop (Shl, v "x", v "k"));
        Assign ("y", v "y" + Binop (Shr, v "x", v "k"));
        Assign ("k", v "k" + i 7);
        Assign ("y", v "y" ^^^ Binop (Asr, v "x", v "k"));
        Assign ("x", Binop (Shl, v "y", v "k") ||| i 1);
      ];
    p "bit_clear" [ "flags"; "mask"; "r" ]
      [
        Assign ("flags", i 0xFF37);
        Assign ("mask", i 0x0F10);
        Assign ("r", v "flags" &&& Unop (Not, v "mask"));
        Assign ("r", v "r" &&& Unop (Not, i 3));
        Assign ("flags", Unop (Not, v "r") ||| v "mask");
      ];
    p "popcount_kernighan" [ "x"; "n" ]
      [
        Assign ("x", i 0xDEAD);
        Assign ("n", i 0);
        While
          ( Rel (Ne, v "x", i 0),
            stmts [ Assign ("x", v "x" &&& (v "x" - i 1)); Assign ("n", v "n" + i 1) ] );
      ];
    p "udiv_shift_sub" [ "num"; "den"; "q"; "bit" ]
      [
        Assign ("num", i 1000);
        Assign ("den", i 7 <<< 4);
        Assign ("q", i 0);
        Assign ("bit", i 16);
        While
          ( Rel (Ne, v "bit", i 0),
            stmts
              [
                Assign ("q", v "q" <<< 1);
                If
                  ( Rel (Uge, v "num", v "den"),
                    stmts
                      [ Assign ("num", v "num" - v "den"); Assign ("q", v "q" ||| i 1) ],
                    [] );
                Assign ("den", v "den" >>> 1);
                Assign ("bit", v "bit" - i 1);
              ] );
      ];
    p "byte_pack" [ "a"; "b"; "w" ]
      [
        Assign ("a", i 0x1A2);
        Assign ("b", i 0x3C4);
        Assign ("w", (v "a" &&& i 0xFF) ||| ((v "b" &&& i 0xFF) <<< 8));
        Assign ("w", v "w" ||| ((v "a" >>> 8) <<< 16));
        Assign ("a", (v "w" >>> 8) &&& i 0xFF);
        Assign ("b", v "w" &&& i 0xFF00);
      ];
    p "abs_diff_clamp" [ "a"; "b"; "d" ]
      [
        Assign ("a", i 37);
        Assign ("b", i 91);
        If
          ( Rel (Sge, v "a", v "b"),
            stmts [ Assign ("d", v "a" - v "b") ],
            stmts [ Assign ("d", v "b" - v "a") ] );
        If (Rel (Sgt, v "d", i 32), stmts [ Assign ("d", i 32) ], []);
        Assign ("d", v "d" + (v "d" <<< 1));
      ];
  ]

let runnable = programs
