module A = Repro_arm.Insn
module Rule = Repro_rules.Rule
module Ruleset = Repro_rules.Ruleset

type report = {
  programs : int;
  candidates : int;
  verified : int;
  rules : Rule.t list;
  rejected : (Extract.candidate * string) list;
}

(* Structural rule key ignoring id/name/provenance, for dedup. *)
let key (r : Rule.t) =
  (r.Rule.guest, r.Rule.host, r.Rule.flags, r.Rule.carry_in, r.Rule.require_distinct)

(* ---------- opcode-class lumping ----------

   Two single-dp-insn rules whose host templates differ only in the
   ALU opcode corresponding to the guest opcode merge into one
   class rule with [`Matched]. *)

let lumpable_dp (r : Rule.t) =
  match r.Rule.guest with
  | [ Rule.G_dp { ops = [ op ]; s; rd; rn; op2 } ] -> (
    match Rule.host_alu_of_dp op with
    | Some host_op ->
      (* exactly one H_alu with that op in the template *)
      let hits =
        List.filter
          (fun h ->
            match h with Rule.H_alu { op = `Fixed o; _ } -> o = host_op | _ -> false)
          r.Rule.host
      in
      if List.length hits = 1 then Some (op, s, rd, rn, op2, host_op) else None
    | None -> None)
  | _ -> None

(* Template with the matched ALU op abstracted out. *)
let abstract_host host host_op =
  List.map
    (fun h ->
      match h with
      | Rule.H_alu { op = `Fixed o; dst; src } when o = host_op ->
        Rule.H_alu { op = `Matched; dst; src }
      | other -> other)
    host

let class_shape (r : Rule.t) =
  match lumpable_dp r with
  | None -> None
  | Some (op, s, rd, rn, op2, host_op) ->
    Some
      ( op,
        ( s,
          rd,
          rn,
          op2,
          abstract_host r.Rule.host host_op,
          r.Rule.flags.Rule.guest_writes,
          r.Rule.carry_in,
          r.Rule.require_distinct ) )

let lump rules =
  (* group by abstract shape *)
  let tbl = Hashtbl.create 64 in
  let passthrough = ref [] in
  List.iter
    (fun r ->
      match class_shape r with
      | None -> passthrough := r :: !passthrough
      | Some (op, shape) ->
        let bucket =
          match Hashtbl.find_opt tbl shape with
          | Some b -> b
          | None ->
            let b = ref [] in
            Hashtbl.replace tbl shape b;
            b
        in
        bucket := (op, r) :: !bucket)
    rules;
  let lumped =
    Hashtbl.fold
      (fun (s, rd, rn, op2, host, guest_writes, carry_in, distinct) bucket acc ->
        match !bucket with
        | [] -> acc
        | [ (_, r) ] -> r :: acc (* singleton: keep concrete *)
        | multi ->
          let ops = List.sort_uniq compare (List.map fst multi) in
          let _, sample = List.hd multi in
          let flags =
            if guest_writes then
              { Rule.guest_writes = true; host_clobbers = true; convention = None }
            else sample.Rule.flags
          in
          {
            sample with
            Rule.name = sample.Rule.name ^ "+class";
            guest =
              [ Rule.G_dp { ops; s; rd; rn; op2 } ];
            host;
            flags;
            carry_in;
            require_distinct = distinct;
          }
          :: acc)
      tbl []
  in
  List.rev !passthrough @ lumped

let learn ?(corpus = Corpus.programs) () =
  List.iter
    (fun p ->
      match Repro_minic.Ast.validate p with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "corpus program %s: %s" p.Repro_minic.Ast.name e))
    corpus;
  let next = ref 1000 in
  let next_id () =
    incr next;
    !next
  in
  let candidates = List.concat_map Extract.of_program corpus in
  let rejected = ref [] in
  let verified = ref 0 in
  let rules = ref [] in
  List.iter
    (fun (c : Extract.candidate) ->
      match Verify.check ~guest:c.Extract.guest ~host:c.Extract.host with
      | Error e -> rejected := (c, "verify: " ^ e) :: !rejected
      | Ok v -> (
        incr verified;
        match Parameterize.generalize c v ~next_id with
        | Error e -> rejected := (c, "parameterize: " ^ e) :: !rejected
        | Ok rule -> rules := rule :: !rules))
    candidates;
  (* dedup *)
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun r ->
        let k = key r in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.replace seen k ();
          true
        end)
      (List.rev !rules)
  in
  (* Renumber positionally from 1001: the ids handed out during
     generalization depend on how many candidates parameterized before
     each survivor, so two learners running concurrently (or a corpus
     tweak) would drift. After lumping, position in the final list is
     the only input — learned ids are a pure function of the builder,
     disjoint from the builtin range (which ends well below 1000). *)
  let final =
    List.mapi (fun i r -> { r with Rule.id = 1001 + i }) (lump unique)
  in
  {
    programs = List.length corpus;
    candidates = List.length candidates;
    verified = !verified;
    rules = final;
    rejected = List.rev !rejected;
  }

let ruleset report = Ruleset.of_list report.rules

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>learning report:@ programs    %d@ candidates  %d@ verified    %d@ rules       \
     %d (after lumping/dedup)@ rejected    %d@]"
    r.programs r.candidates r.verified (List.length r.rules) (List.length r.rejected)
