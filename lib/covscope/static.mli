(** Translation-time per-rule emission sink.

    Records, per rule id, how many TB sites the rule translated and
    how many host instructions those sites emitted. The translator
    reports into an attached sink; cache rebuilds and depot passes
    detach it (the decision-ledger discipline) so re-translation never
    double-counts. Not a snapshot section — it describes this
    process's translation work, not guest state. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> rule:int -> host_insns:int -> unit
(** One translated site for [rule] that emitted [host_insns]
    countable host instructions. *)

val entries : t -> (int * int * int) list
(** All [(rule_id, sites, emitted_host_insns)] rows, sorted by id. *)

val find : t -> int -> int * int
(** [(sites, emitted)] for one rule id; [(0, 0)] if never seen. *)
