module AI = Repro_arm.Insn
module Stats = Repro_x86.Stats
module Jsonx = Repro_observe.Jsonx

(* Fallback cost models, used only when a bucket has no measured
   sibling to borrow a mean from: the approximate host insns per guest
   insn of baseline TCG and of rule-translated code on this backend. *)
let default_baseline_cpi = 8.0
let default_covered_cpi = 3.0

(* ---- sources: raw attribution tables, mergeable across machines ---- *)

type source = {
  entries : (int * int * int) list;  (* (attr, retirements, cost), sorted *)
  guest_insns : int;
  host_insns : int;
  residual : int;  (* host insns accrued since the last retirement *)
}

let of_stats st =
  {
    entries = Stats.cov_entries st;
    guest_insns = st.Stats.guest_insns;
    host_insns = st.Stats.host_insns;
    residual = Stats.cov_residual st;
  }

let merge sources =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun s ->
      List.iter
        (fun (attr, n, c) ->
          match Hashtbl.find_opt tbl attr with
          | Some (n0, c0) -> Hashtbl.replace tbl attr (n0 + n, c0 + c)
          | None -> Hashtbl.add tbl attr (n, c))
        s.entries)
    sources;
  {
    entries =
      Hashtbl.fold (fun a (n, c) acc -> (a, n, c) :: acc) tbl [] |> List.sort compare;
    guest_insns = List.fold_left (fun acc s -> acc + s.guest_insns) 0 sources;
    host_insns = List.fold_left (fun acc s -> acc + s.host_insns) 0 sources;
    residual = List.fold_left (fun acc s -> acc + s.residual) 0 sources;
  }

(* The partition invariant: the per-attribution retirement counts sum
   exactly to the retired-guest-instruction total — every retirement
   is charged to exactly one tier. Structural (Stats.retire is the
   only increment site of both), but asserted anyway, the way
   perfscope asserts [Scope.total = host_insns]. *)
let partition_error s =
  let sum = List.fold_left (fun acc (_, n, _) -> acc + n) 0 s.entries in
  if sum <> s.guest_insns then
    Some
      (Printf.sprintf "tier partition broken: sum of tier counts %d <> %d retired"
         sum s.guest_insns)
  else None

let check_partition s =
  match partition_error s with None -> () | Some msg -> failwith ("covscope: " ^ msg)

(* ---- the report ---- *)

type cell = { n : int; cost : int }

let cell_zero = { n = 0; cost = 0 }
let cell_add a b = { n = a.n + b.n; cost = a.cost + b.cost }
let mean c = if c.n = 0 then 0. else float_of_int c.cost /. float_of_int c.n

type rule_row = {
  rule_id : int;
  rule_name : string;
  hits : int;  (* dynamic retirements attributed to this rule (any tier) *)
  dyn_cost : int;
  sites : int;  (* translation sites (static, when a sink was attached) *)
  emitted : int;  (* host insns those sites emitted *)
  counterfactual : float;  (* estimated baseline cost of the same retirements *)
  payoff : float;  (* counterfactual - dyn_cost; negative = regression *)
  dead : bool;
  negative : bool;
}

type opportunity = {
  o_cls : AI.cls;
  o_idiom : int;
  o_cell : cell;  (* uncovered dynamic footprint of the (class, idiom) pair *)
  o_savings : float;  (* count x per-insn host-cost delta *)
}

type t = {
  src : source;
  tiers : cell array;  (* by Attr.tier_index *)
  matrix : cell array array;  (* class x tier *)
  rules : rule_row list;
  opportunities : opportunity list;
}

let coverage_of tiers guest_insns =
  if guest_insns = 0 then 0.
  else
    let covered =
      List.fold_left
        (fun acc tr -> if Attr.covered tr then acc + tiers.(Attr.tier_index tr).n else acc)
        0 Attr.all_tiers
    in
    float_of_int covered /. float_of_int guest_insns

let coverage t = coverage_of t.tiers t.src.guest_insns

let make ?static ?(rules = []) src =
  check_partition src;
  let tiers = Array.make Attr.n_tiers cell_zero in
  let matrix = Array.make_matrix AI.n_classes Attr.n_tiers cell_zero in
  let by_rule = Hashtbl.create 32 in
  let by_pair = Hashtbl.create 128 in
  List.iter
    (fun (attr, n, cost) ->
      let ti = Attr.tier_index (Attr.tier attr) in
      let c = { n; cost } in
      tiers.(ti) <- cell_add tiers.(ti) c;
      matrix.(Attr.cls attr).(ti) <- cell_add matrix.(Attr.cls attr).(ti) c;
      (match Attr.rule attr with
      | Some id ->
        let prev = Option.value (Hashtbl.find_opt by_rule id) ~default:cell_zero in
        Hashtbl.replace by_rule id (cell_add prev c)
      | None -> ());
      if not (Attr.covered (Attr.tier attr)) then begin
        let key = (Attr.cls attr, Attr.idiom attr) in
        let prev = Option.value (Hashtbl.find_opt by_pair key) ~default:cell_zero in
        Hashtbl.replace by_pair key (cell_add prev c)
      end)
    src.entries;
  (* Counterfactual cost model: what would this class have cost under
     baseline TCG?  Borrow the measured baseline mean of the same
     class; fall back to the global baseline mean, then a constant. *)
  let baseline_ti = Attr.tier_index Attr.Baseline in
  let global_baseline =
    if tiers.(baseline_ti).n > 0 then mean tiers.(baseline_ti) else default_baseline_cpi
  in
  let baseline_cpi cls_ix =
    if matrix.(cls_ix).(baseline_ti).n > 0 then mean matrix.(cls_ix).(baseline_ti)
    else global_baseline
  in
  (* Covered mean: what does a rule-served guest insn cost today? *)
  let covered_cell =
    List.fold_left
      (fun acc tr -> if Attr.covered tr then cell_add acc tiers.(Attr.tier_index tr) else acc)
      cell_zero Attr.all_tiers
  in
  let covered_cpi = if covered_cell.n > 0 then mean covered_cell else default_covered_cpi in
  (* Per-rule ledger: every rule in the ruleset gets a row, so dead
     rules (zero dynamic hits) surface instead of vanishing. *)
  let rule_rows =
    List.map
      (fun (id, name) ->
        let dyn = Option.value (Hashtbl.find_opt by_rule id) ~default:cell_zero in
        let sites, emitted =
          match static with Some s -> Static.find s id | None -> (0, 0)
        in
        (* Class mix of this rule's retirements is not tracked per
           rule (the attr word already holds it — recover it from the
           entries). *)
        let counterfactual =
          List.fold_left
            (fun acc (attr, n, _) ->
              if Attr.rule attr = Some id then
                acc +. (float_of_int n *. baseline_cpi (Attr.cls attr))
              else acc)
            0. src.entries
        in
        let payoff = counterfactual -. float_of_int dyn.cost in
        {
          rule_id = id;
          rule_name = name;
          hits = dyn.n;
          dyn_cost = dyn.cost;
          sites;
          emitted;
          counterfactual;
          payoff;
          dead = dyn.n = 0;
          negative = dyn.n > 0 && payoff < 0.;
        })
      (List.sort compare rules)
  in
  let opportunities =
    Hashtbl.fold
      (fun (cls_ix, idiom) cl acc ->
        let savings = float_of_int cl.n *. Float.max 0. (mean cl -. covered_cpi) in
        { o_cls = AI.cls_of_index cls_ix; o_idiom = idiom; o_cell = cl; o_savings = savings }
        :: acc)
      by_pair []
    |> List.sort (fun a b ->
           match compare b.o_savings a.o_savings with
           | 0 -> compare (AI.cls_index a.o_cls, a.o_idiom) (AI.cls_index b.o_cls, b.o_idiom)
           | c -> c)
  in
  { src; tiers; matrix; rules = rule_rows; opportunities }

(* ---- JSON ---- *)

let cell_json c = Jsonx.obj [ ("insns", Jsonx.int c.n); ("cost", Jsonx.int c.cost) ]

let to_json t =
  let tiers_json =
    Jsonx.obj
      (List.map
         (fun tr -> (Attr.tier_name tr, cell_json t.tiers.(Attr.tier_index tr)))
         Attr.all_tiers)
  in
  let matrix_json =
    Jsonx.arr
      (List.filter_map
         (fun cls ->
           let ix = AI.cls_index cls in
           let row = t.matrix.(ix) in
           let total = Array.fold_left cell_add cell_zero row in
           if total.n = 0 then None
           else
             Some
               (Jsonx.obj
                  ([
                     ("class", Jsonx.str (AI.cls_name cls));
                     ("insns", Jsonx.int total.n);
                     ("cost", Jsonx.int total.cost);
                     ("coverage", Jsonx.float (coverage_of row total.n));
                   ]
                  @ List.filter_map
                      (fun tr ->
                        let c = row.(Attr.tier_index tr) in
                        if c.n = 0 then None else Some (Attr.tier_name tr, cell_json c))
                      Attr.all_tiers)))
         AI.all_classes)
  in
  let rules_json =
    Jsonx.arr
      (List.map
         (fun r ->
           Jsonx.obj
             [
               ("id", Jsonx.int r.rule_id);
               ("name", Jsonx.str r.rule_name);
               ("hits", Jsonx.int r.hits);
               ("dyn_cost", Jsonx.int r.dyn_cost);
               ("sites", Jsonx.int r.sites);
               ("emitted", Jsonx.int r.emitted);
               ("counterfactual", Jsonx.float r.counterfactual);
               ("payoff", Jsonx.float r.payoff);
               ("dead", Jsonx.bool r.dead);
               ("negative_payoff", Jsonx.bool r.negative);
             ])
         t.rules)
  in
  let opps_json =
    Jsonx.arr
      (List.map
         (fun o ->
           Jsonx.obj
             [
               ("class", Jsonx.str (AI.cls_name o.o_cls));
               ("idiom", Jsonx.str (AI.idiom_name o.o_cls o.o_idiom));
               ("insns", Jsonx.int o.o_cell.n);
               ("cost", Jsonx.int o.o_cell.cost);
               ("mean_cost", Jsonx.float (mean o.o_cell));
               ("est_savings", Jsonx.float o.o_savings);
             ])
         t.opportunities)
  in
  Jsonx.obj
    [
      ("meta", Jsonx.str "dbt-coverage");
      ("guest_insns", Jsonx.int t.src.guest_insns);
      ("host_insns", Jsonx.int t.src.host_insns);
      ( "attributed",
        Jsonx.int (List.fold_left (fun acc (_, _, c) -> acc + c) 0 t.src.entries) );
      ("coverage", Jsonx.float (coverage t));
      ("tiers", tiers_json);
      ("matrix", matrix_json);
      ("rules", rules_json);
      ("opportunities", opps_json);
      (* Fields that may legitimately differ between otherwise
         identical runs of different harnesses (report writers, not
         execution) live under [volatile] so gates can [del] them. *)
      ("volatile", Jsonx.obj [ ("residual", Jsonx.int t.src.residual) ]);
    ]

(* ---- text views ---- *)

let pp_tiers ppf t =
  Format.fprintf ppf "@[<v>retired guest insns %d  (coverage %.1f%%)@ " t.src.guest_insns
    (100. *. coverage t);
  List.iter
    (fun tr ->
      let c = t.tiers.(Attr.tier_index tr) in
      if c.n > 0 then
        Format.fprintf ppf "  %-8s %10d insns  %10d host  (%.2f/insn)@ " (Attr.tier_name tr)
          c.n c.cost (mean c))
    Attr.all_tiers;
  Format.fprintf ppf "@]"

let pp_matrix ppf t =
  Format.fprintf ppf "@[<v>%-10s %10s %10s  %s@ " "class" "insns" "host" "coverage";
  List.iter
    (fun cls ->
      let row = t.matrix.(AI.cls_index cls) in
      let total = Array.fold_left cell_add cell_zero row in
      if total.n > 0 then
        Format.fprintf ppf "%-10s %10d %10d  %5.1f%%  %s@ " (AI.cls_name cls) total.n
          total.cost
          (100. *. coverage_of row total.n)
          (String.concat " "
             (List.filter_map
                (fun tr ->
                  let c = row.(Attr.tier_index tr) in
                  if c.n = 0 then None
                  else Some (Printf.sprintf "%s:%d" (Attr.tier_name tr) c.n))
                Attr.all_tiers)))
    AI.all_classes;
  Format.fprintf ppf "@]"

let pp_rules ppf t =
  Format.fprintf ppf "@[<v>%-28s %10s %10s %9s  flags@ " "rule" "hits" "host" "payoff";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-28s %10d %10d %9.0f  %s@ " r.rule_name r.hits r.dyn_cost
        r.payoff
        (String.concat ","
           ((if r.dead then [ "dead" ] else [])
           @ if r.negative then [ "negative-payoff" ] else [])))
    t.rules;
  Format.fprintf ppf "@]"

let pp_opportunities ?(limit = 10) ppf t =
  Format.fprintf ppf "@[<v>%-20s %10s %10s %12s@ " "class.idiom" "insns" "mean" "savings";
  List.iteri
    (fun i o ->
      if i < limit then
        Format.fprintf ppf "%-20s %10d %10.2f %12.0f@ "
          (AI.cls_name o.o_cls ^ "." ^ AI.idiom_name o.o_cls o.o_idiom)
          o.o_cell.n (mean o.o_cell) o.o_savings)
    t.opportunities;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>-- coverage: tiers --@ %a@ -- coverage: matrix --@ %a@ " pp_tiers
    t pp_matrix t;
  if t.rules <> [] then Format.fprintf ppf "-- coverage: rules --@ %a@ " pp_rules t;
  if t.opportunities <> [] then
    Format.fprintf ppf "-- coverage: opportunities --@ %a@ " (pp_opportunities ~limit:10) t;
  Format.fprintf ppf "@]"
