module AI = Repro_arm.Insn

type tier =
  | Region    (** rule-translated code running inside a fused hot region *)
  | Rule      (** native code from a learned/builtin rule TB *)
  | Baseline  (** baseline TCG frontend/backend translation *)
  | Interp    (** the decode-dispatch interpreter rung *)
  | Helper    (** retired natively but served by a helper call *)

let n_tiers = 5

let tier_index = function
  | Region -> 0
  | Rule -> 1
  | Baseline -> 2
  | Interp -> 3
  | Helper -> 4

let tier_of_index = function
  | 0 -> Region
  | 1 -> Rule
  | 2 -> Baseline
  | 3 -> Interp
  | 4 -> Helper
  | n -> invalid_arg (Printf.sprintf "Attr.tier_of_index: %d" n)

let all_tiers = [ Region; Rule; Baseline; Interp; Helper ]

let tier_name = function
  | Region -> "region"
  | Rule -> "rule"
  | Baseline -> "baseline"
  | Interp -> "interp"
  | Helper -> "helper"

let covered = function
  | Region | Rule -> true
  | Baseline | Interp | Helper -> false

(* Packed attribution word, the [Cnt_guest_insn] payload:

     bits 0..2   tier          (n_tiers <= 8)
     bits 3..9   opcode class  (AI.n_classes <= 128)
     bits 10..13 idiom         (AI.n_idioms = 16)
     bits 14..   rule id + 1   (0 = not rule-attributed)

   [Stats.retire] treats the word as opaque; only the reports decode
   it. The static widths are asserted once at load time. *)

let () =
  assert (n_tiers <= 8);
  assert (AI.n_classes <= 128);
  assert (AI.n_idioms <= 16)

let tier_bits = 3
let cls_shift = tier_bits
let idiom_shift = cls_shift + 7
let rule_shift = idiom_shift + 4

let pack_raw ~tier ~cls ~idiom ~rule =
  let rule_field = match rule with None -> 0 | Some id -> id + 1 in
  tier_index tier
  lor (cls lsl cls_shift)
  lor (idiom lsl idiom_shift)
  lor (rule_field lsl rule_shift)

let pack ~tier ?rule insn =
  pack_raw ~tier
    ~cls:(AI.cls_index (AI.classify insn))
    ~idiom:(AI.idiom_of insn) ~rule

(* Attribution of a guest instruction we could not decode (the
   interpreter rung's undefined-instruction path): charged to the
   [Udf] class with a plain idiom. *)
let pack_undecodable ~tier =
  pack_raw ~tier ~cls:(AI.cls_index AI.C_udf) ~idiom:0 ~rule:None

let tier attr = tier_of_index (attr land 7)
let cls attr = (attr lsr cls_shift) land 127
let idiom attr = (attr lsr idiom_shift) land 15

let rule attr =
  let f = attr lsr rule_shift in
  if f = 0 then None else Some (f - 1)

let retier attr tier = attr land lnot 7 lor tier_index tier

let pp ppf attr =
  let t = tier attr in
  let c = AI.cls_of_index (cls attr) in
  Format.fprintf ppf "%s/%s.%s" (tier_name t) (AI.cls_name c)
    (AI.idiom_name c (idiom attr));
  match rule attr with
  | None -> ()
  | Some id -> Format.fprintf ppf "/r%d" id
