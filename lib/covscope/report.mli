(** The translation-quality observatory's reports.

    Consumes the always-on attribution table kept by
    {!Repro_x86.Stats} (one row per packed {!Attr} word: retirements
    and attributed host-insn cost) and derives the three instruments
    of this layer: the tier × opcode-class coverage matrix, the
    per-rule utilization/payoff ledger, and the ranked rule-learning
    opportunity queue. Everything here is read-only over the stats —
    generating a report never perturbs execution. *)

(** {2 Sources} *)

type source = {
  entries : (int * int * int) list;
      (** [(attr, retirements, host_cost)] rows, sorted by word *)
  guest_insns : int;
  host_insns : int;
  residual : int;  (** host insns accrued since the last retirement *)
}

val of_stats : Repro_x86.Stats.t -> source
val merge : source list -> source
(** Pointwise sum — the fleet-level merge used by telemetry. *)

val partition_error : source -> string option
(** [None] iff the tier partition invariant holds: per-attribution
    retirement counts sum exactly to [guest_insns]. *)

val check_partition : source -> unit
(** Raises [Failure] with a one-line reason if the partition is broken. *)

(** {2 Reports} *)

type cell = { n : int; cost : int }

type rule_row = {
  rule_id : int;
  rule_name : string;
  hits : int;  (** dynamic retirements attributed to this rule *)
  dyn_cost : int;
  sites : int;  (** static translation sites (when a sink was attached) *)
  emitted : int;  (** host insns those sites emitted *)
  counterfactual : float;
      (** estimated baseline-TCG cost of the same retirements
          (measured per-class baseline mean, with fallbacks) *)
  payoff : float;  (** [counterfactual -. dyn_cost] *)
  dead : bool;  (** zero dynamic hits — quarantine candidate *)
  negative : bool;  (** hits but negative payoff — quarantine candidate *)
}

type opportunity = {
  o_cls : Repro_arm.Insn.cls;
  o_idiom : int;
  o_cell : cell;  (** uncovered dynamic footprint of the pair *)
  o_savings : float;  (** [count x max 0 (mean cost - covered mean)] *)
}

type t = {
  src : source;
  tiers : cell array;  (** by {!Attr.tier_index} *)
  matrix : cell array array;  (** class × tier *)
  rules : rule_row list;
  opportunities : opportunity list;  (** ranked, best first *)
}

val make : ?static:Static.t -> ?rules:(int * string) list -> source -> t
(** Build a report. [rules] lists every rule in the active ruleset
    (id, name) so dead rules surface; [static] supplies the
    translation-time sites/emitted columns. Asserts the partition
    invariant (raises [Failure] when broken). *)

val coverage : t -> float
(** Fraction of retired guest insns served by the rule or region tier
    — the paper's rule-coverage metric. *)

val to_json : t -> string
(** Complete report document, [meta = "dbt-coverage"]. Deterministic
    for a deterministic run; writer-specific fields live under
    [volatile]. *)

val pp : Format.formatter -> t -> unit
val pp_tiers : Format.formatter -> t -> unit
val pp_matrix : Format.formatter -> t -> unit
val pp_rules : Format.formatter -> t -> unit
val pp_opportunities : ?limit:int -> Format.formatter -> t -> unit
