(* Translation-time side of the per-rule ledger: how many TB sites
   each rule translated and how many host instructions those sites
   emitted. Purely a sink — the translator reports into it when one is
   attached, and cache rebuilds / depot passes detach it (exactly like
   the decision ledger) so re-translation of already-counted sites
   cannot double-count. *)

type row = { mutable sites : int; mutable emitted : int }
type t = { by_rule : (int, row) Hashtbl.t }

let create () = { by_rule = Hashtbl.create 32 }
let reset t = Hashtbl.reset t.by_rule

let record t ~rule ~host_insns =
  let r =
    match Hashtbl.find_opt t.by_rule rule with
    | Some r -> r
    | None ->
      let r = { sites = 0; emitted = 0 } in
      Hashtbl.add t.by_rule rule r;
      r
  in
  r.sites <- r.sites + 1;
  r.emitted <- r.emitted + host_insns

let entries t =
  Hashtbl.fold (fun id r acc -> (id, r.sites, r.emitted) :: acc) t.by_rule []
  |> List.sort compare

let find t rule =
  match Hashtbl.find_opt t.by_rule rule with
  | Some r -> (r.sites, r.emitted)
  | None -> (0, 0)
