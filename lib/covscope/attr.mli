(** Packed per-retirement attribution words.

    Every retired guest instruction is charged, at its single
    retirement point (the [Cnt_guest_insn] pseudo-op), to exactly one
    translation tier plus the instruction's opcode class, within-class
    idiom, and — for rule-translated code — the rule id. The whole
    tuple is packed into one immediate so the execution engine stays
    oblivious: [Stats.retire] indexes by the opaque word, and only the
    coverage reports decode it.

    Word layout: bits 0-2 tier, 3-9 class ({!Repro_arm.Insn.cls_index}),
    10-13 idiom, 14+ rule id + 1 (0 = no rule). *)

type tier =
  | Region    (** rule-translated code running inside a fused hot region *)
  | Rule      (** native code from a learned/builtin rule TB *)
  | Baseline  (** baseline TCG frontend/backend translation *)
  | Interp    (** the decode-dispatch interpreter rung *)
  | Helper    (** retired natively but served by a helper call *)

val n_tiers : int
val tier_index : tier -> int
val tier_of_index : int -> tier
val all_tiers : tier list
val tier_name : tier -> string

val covered : tier -> bool
(** The paper's "rule coverage" numerator: {!Region} and {!Rule}. *)

val pack : tier:tier -> ?rule:int -> Repro_arm.Insn.t -> int
(** Attribution word for a decoded guest instruction (class and idiom
    are derived from the instruction itself). *)

val pack_raw : tier:tier -> cls:int -> idiom:int -> rule:int option -> int

val pack_undecodable : tier:tier -> int
(** Attribution for a fetch the decoder rejected (charged to the
    undefined-instruction class). *)

val tier : int -> tier
val cls : int -> int
val idiom : int -> int
val rule : int -> int option

val retier : int -> tier -> int
(** Same word re-attributed to another tier (the fallback-path
    repatch). *)

val pp : Format.formatter -> int -> unit
