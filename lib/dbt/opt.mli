(** Optimization configuration for the rule-based engine — the paper's
    §III-B (reduction), §III-C (elimination ×3) and §III-D
    (scheduling ×2), individually toggleable for the cumulative
    experiment of Fig. 16 and the ablations. *)

type t = {
  reduction : bool;
      (** III-B: store the CCR packed in one env slot (+ lazy parse)
          instead of parsing into QEMU's four per-flag slots. *)
  elim_restores : bool;
      (** III-C-1: track flag residency; skip Sync-restores when the
          flags are already live in EFLAGS. *)
  elim_mem : bool;
      (** III-C-2: merge coordination across consecutive memory
          accesses (no eager re-restore between helper calls). *)
  inter_tb : bool;
      (** III-C-3: on block chaining, drop the predecessor's epilogue
          flag save when the successor redefines flags before use. *)
  sched_dbu : bool;
      (** III-D-1: define-before-use scheduling. *)
  sched_irq : bool;
      (** III-D-2: move the TB-head interrupt check next to the first
          memory access. *)
  inline_mmu : bool;
      (** Extension (the paper's stated future work): give the
          rule-based engine an inline TLB fast path instead of a
          per-access context switch into QEMU. Not part of any paper
          configuration. *)
  regions : bool;
      (** Extension: hot-region superblocks — fuse hot chained TB
          traces into one body and re-run the III-B/C/D coordination
          pipeline across the merged region, eliminating boundary
          Sync pairs and per-block interrupt checks region-wide. Not
          part of any paper configuration. *)
}

val base : t
(** Everything off — the paper's unoptimized rule-based port (the one
    that loses 5% to QEMU). *)

val reduction_only : t
(** Fig. 16 "+Reduction". *)

val with_elimination : t
(** Fig. 16 "+Elimination". *)

val full : t
(** Fig. 16 "+Scheduling" = all optimizations (the 1.36x point). *)

val with_regions : t
(** [full] plus {!field-regions} — hot-region superblock fusion on top
    of every paper optimization. *)

val future : t
(** [full] plus {!field-inline_mmu} — the address-translation
    optimization the paper leaves as future work. *)

val name : t -> string
val levels : (string * t) list
(** The four cumulative levels, in paper order. *)
