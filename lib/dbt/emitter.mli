(** The rule-based TB emitter — the paper's core contribution.

    Guest registers r0–r8/sp/lr live in pinned host registers and the
    condition flags live in host EFLAGS while translated code runs;
    every transfer of control into QEMU (memory-access helpers,
    system-level instructions, uncovered instructions, TB exits,
    interrupt checks) requires {e CPU-state coordination}: Sync-save
    of dirty pinned state into env before, and (lazy) Sync-restore
    after. The emitter is a small abstract interpreter over that
    residency state; the {!Opt.t} switches control how eagerly it
    coordinates, reproducing the paper's unoptimized (slower than
    QEMU) and optimized (1.36x faster) designs from one code base. *)

open Repro_common
module A := Repro_arm.Insn

type exit_state = {
  conv_at_exit : Repro_rules.Flagconv.t option;
      (** flags convention live in EFLAGS when this exit is reached
          (after the epilogue; [None] when EFLAGS holds nothing) *)
  flags_save_in_epilogue : bool;
      (** the epilogue of this exit contains a flag Sync-save that
          inter-TB linking may elide *)
}

type result = {
  prog : Repro_x86.Prog.t;
  exits : Repro_tcg.Tb.exit_kind array;
  exit_states : exit_state array;
  first_flag_is_def : bool;
      (** this TB defines guest flags before any use — the successor
          condition of the paper's inter-TB optimization *)
  rule_covered : int;  (** guest insns translated via rules *)
  fallback : int;      (** guest insns sent to the interp helper *)
  rules_used : (Repro_rules.Rule.t * int) list;
      (** distinct rules whose host templates were emitted, each with
          the OR of its matched instructions' guest register def-masks
          — shadow verification attributes divergences to rules by the
          registers they wrote *)
  prov : int array;
      (** coordination-savings provenance
          ({!Repro_observe.Ledger.prov_len} slots): per optimization
          pass, the sync ops and host instructions this emission saves
          over the counterfactual with that pass disabled.  Observational
          only — accumulating it never changes the emitted program. *)
  cov_sites : (int * int) list;
      (** [(rule id, emitted host insns)] per rule-template site, in
          emission order — the translation-time side of the coverage
          per-rule ledger ({!Repro_covscope.Static}) *)
}

val save_cost : reduction:bool -> Repro_rules.Flagconv.t -> int
(** Real host instructions of a flag Sync-save under the given design
    (III-B packed vs one-to-many parsed); the counterfactual cost
    table the provenance uses.  Exposed for the ledger tests. *)

val restore_cost : reduction:bool -> int
(** Likewise for a flag Sync-restore. *)

val emit :
  opt:Opt.t ->
  ruleset:Repro_rules.Ruleset.t ->
  privileged:bool ->
  tb_pc:Word32.t ->
  insns:A.t array ->
  ?origins:int array ->
  ?elide_flag_save:bool array ->
  ?entry_conv:Repro_rules.Flagconv.t ->
  ?sched_hoists:int ->
  unit ->
  result
(** [origins] gives each (scheduled) instruction's original index in
    the fetched block, so branch targets and fault/resume PCs refer to
    real guest addresses. [elide_flag_save] (indexed by exit slot) drops the epilogue flag
    save on slots whose chained successor redefines flags before use;
    [entry_conv] marks a TB that may be entered with live guest flags
    in EFLAGS under the given convention (set on such successors; its
    interrupt stub then spills EFLAGS before exiting, paper Fig. 7).
    [sched_hoists] is the number of define-before-use hoists the
    scheduler applied to [insns] — credited to III-D.1 in the
    provenance (it does not affect emission). *)

val emit_region :
  opt:Opt.t ->
  ruleset:Repro_rules.Ruleset.t ->
  privileged:bool ->
  chunks:(Word32.t * A.t array * int array * int) array ->
  ?elide_flag_save:bool array ->
  ?entry_conv:Repro_rules.Flagconv.t ->
  unit ->
  result
(** Fuse a hot chained trace into one superblock body. [chunks] is the
    trace in execution order — per constituent TB its head guest PC,
    scheduled instructions, origin indices and hoist count (at least
    two chunks). The abstract coordination state flows across chunk
    seams: boundary Sync pairs and per-TB interrupt checks are
    eliminated region-wide (credited to the [Region] ledger pass) and a
    single interrupt check guards the region head. Exit arrays are
    {!Repro_tcg.Tb.region_exit_slots} long, with
    {!Repro_tcg.Tb.slot_irq} still the interrupt slot; the cold
    direction of every interior branch keeps a normal epilogue exit.
    Raises {!Repro_tcg.Tb.Tb_too_complex} when the trace cannot be
    fused (non-contiguous seam, exotic interior ender, exit-slot
    overflow) — callers fall back to the unfused TBs. *)
