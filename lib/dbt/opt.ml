type t = {
  reduction : bool;
  elim_restores : bool;
  elim_mem : bool;
  inter_tb : bool;
  sched_dbu : bool;
  sched_irq : bool;
  inline_mmu : bool;
  regions : bool;
}

let base =
  {
    reduction = false;
    elim_restores = false;
    elim_mem = false;
    inter_tb = false;
    sched_dbu = false;
    sched_irq = false;
    inline_mmu = false;
    regions = false;
  }

let reduction_only = { base with reduction = true }

let with_elimination =
  { reduction_only with elim_restores = true; elim_mem = true; inter_tb = true }

let full = { with_elimination with sched_dbu = true; sched_irq = true }
let with_regions = { full with regions = true }
let future = { full with inline_mmu = true }

let name t =
  if t = base then "base"
  else if t = reduction_only then "+reduction"
  else if t = with_elimination then "+elimination"
  else if t = full then "full"
  else if t = with_regions then "+regions"
  else if t = future then "future"
  else
    Printf.sprintf "custom(red=%b,elim=%b/%b/%b,sched=%b/%b,immu=%b,reg=%b)"
      t.reduction t.elim_restores t.elim_mem t.inter_tb t.sched_dbu t.sched_irq
      t.inline_mmu t.regions

let levels =
  [
    ("base", base);
    ("+reduction", reduction_only);
    ("+elimination", with_elimination);
    ("full", full);
  ]
