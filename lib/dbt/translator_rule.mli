(** The rule-based system-level translator: fetch a guest block, apply
    define-before-use scheduling (III-D-1), emit through {!Emitter},
    and implement the inter-TB optimization (III-C-3) at block-chaining
    time by re-emitting the predecessor without its epilogue flag save
    and the successor with an interrupt stub that spills the inherited
    EFLAGS. Plug the four callbacks into {!Repro_tcg.Engine.run}.

    Robustness layer: shadow verification replays the first
    [shadow_depth] engine-dispatched executions of each rule-carrying
    TB on the reference interpreter and compares registers, NZCV and
    the byte-level memory effect. A divergence repairs guest state
    from the replay, blacklists the TB's address (subsequent
    translations fall back to the baseline translator) and strikes
    every rule used in the TB; rules reaching
    [quarantine_threshold] strikes are quarantined in the ruleset. *)

open Repro_common

type t

val create :
  opt:Opt.t ->
  ruleset:Repro_rules.Ruleset.t ->
  ?shadow_depth:int ->
  ?quarantine_threshold:int ->
  unit ->
  t
(** [shadow_depth] (default 0 = disabled) is the number of verified
    executions per TB address; [quarantine_threshold] (default 2) the
    strikes that quarantine a rule. *)

val translate :
  t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.Cache.t -> pc:Word32.t ->
  (Repro_tcg.Tb.t, Repro_arm.Mem.fault) result
(** Never raises on guest-controlled input: emitter resource
    overflows retry with shorter blocks and bottom out at the
    baseline's single-instruction interpreter TB; blacklisted
    addresses translate through {!Repro_tcg.Translator_qemu}. *)

val link_hook :
  t -> pred:Repro_tcg.Tb.t -> slot:int -> succ:Repro_tcg.Tb.t -> unit

val on_enter : t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.t -> unit
(** Engine-dispatch entry: if the TB assumes live flags in EFLAGS
    (inter-TB), install them from env (a Sync-restore performed by the
    engine, charged as such). Also arms shadow verification for this
    execution when the sampling policy selects it. *)

val on_executed :
  t ->
  Repro_tcg.Runtime.t ->
  Repro_tcg.Tb.t ->
  outcome:Repro_x86.Exec.outcome ->
  guest:int ->
  [ `Continue | `Invalidate ]
(** Post-execution check against the armed replay; [`Invalidate]
    signals the engine that guest state was repaired after a
    divergence. *)

val schedule : opt:Opt.t -> Repro_arm.Insn.t array -> Repro_arm.Insn.t array
(** The define-before-use scheduling pass (exposed for tests). *)

val stats_rule_covered : t -> int
val stats_fallback : t -> int
val stats_inter_tb_elisions : t -> int

val blacklist_size : t -> int
(** Guest PCs permanently routed to the baseline translator. *)
