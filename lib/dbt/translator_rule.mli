(** The rule-based system-level translator: fetch a guest block, apply
    define-before-use scheduling (III-D-1), emit through {!Emitter},
    and implement the inter-TB optimization (III-C-3) at block-chaining
    time by re-emitting the predecessor without its epilogue flag save
    and the successor with an interrupt stub that spills the inherited
    EFLAGS. Plug the four callbacks into {!Repro_tcg.Engine.run}.

    Robustness layer: shadow verification replays the first
    [shadow_depth] engine-dispatched executions of each rule-carrying
    TB on the reference interpreter and compares registers, NZCV and
    the byte-level memory effect. A divergence repairs guest state
    from the replay, blacklists the TB's address (subsequent
    translations fall back to the baseline translator) and strikes
    every rule used in the TB; rules reaching
    [quarantine_threshold] strikes are quarantined in the ruleset. *)

open Repro_common

type t

val create :
  opt:Opt.t ->
  ruleset:Repro_rules.Ruleset.t ->
  ?shadow_depth:int ->
  ?quarantine_threshold:int ->
  ?ledger:Repro_observe.Ledger.t ->
  unit ->
  t
(** [shadow_depth] (default 0 = disabled) is the number of verified
    executions per TB address; [quarantine_threshold] (default 2) the
    strikes that quarantine a rule.  [ledger] receives per-pass
    static coordination savings at every (re-)emission and the
    engine-entry restore costs of III-C.3. *)

val set_ledger : t -> Repro_observe.Ledger.t option -> unit
(** Attach/detach the coordination ledger.  Detached during snapshot
    cache rebuild: the rebuild re-runs every translation, and
    re-recording their statics would double-count. *)

val ledger : t -> Repro_observe.Ledger.t option

val set_cov_static : t -> Repro_covscope.Static.t option -> unit
(** Attach/detach the coverage per-rule translation sink: each first
    emission reports its rule-template sites and their emitted host
    instructions. Same detach discipline as {!set_ledger} — snapshot
    cache rebuilds and depot passes re-run translations and must not
    re-record sites. *)

val cov_static : t -> Repro_covscope.Static.t option

val translate :
  t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.Cache.t -> pc:Word32.t ->
  (Repro_tcg.Tb.t, Repro_arm.Mem.fault) result
(** Never raises on guest-controlled input: emitter resource
    overflows retry with shorter blocks and bottom out at the
    baseline's single-instruction interpreter TB; blacklisted
    addresses translate through {!Repro_tcg.Translator_qemu}. *)

val form_region :
  t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.Cache.t -> Repro_tcg.Tb.t ->
  Repro_tcg.Tb.t option
(** The engine's [on_hot] hook: walk the hot TB's hottest chain of
    direct successors (stopping at loop closure, a regime change, an
    unfusable block or the length cap), fuse the trace into one
    superblock via {!Emitter.emit_region}, install it over the head PC
    and unlink stale chained jumps into the head. [None] when no
    fusable trace of at least two chunks exists — the TB simply keeps
    running unfused. *)

val fuse_trace :
  t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.Cache.t ->
  trace:Repro_tcg.Tb.t list -> Repro_tcg.Tb.t option
(** Fuse an already-selected constituent trace (snapshot rebuild
    replays a recorded one through this). *)

val link_hook :
  t -> pred:Repro_tcg.Tb.t -> slot:int -> succ:Repro_tcg.Tb.t -> unit

val on_enter : t -> Repro_tcg.Runtime.t -> Repro_tcg.Tb.t -> unit
(** Engine-dispatch entry: if the TB assumes live flags in EFLAGS
    (inter-TB), install them from env (a Sync-restore performed by the
    engine, charged as such). Also arms shadow verification for this
    execution when the sampling policy selects it. *)

val on_executed :
  t ->
  Repro_tcg.Runtime.t ->
  Repro_tcg.Tb.t ->
  outcome:Repro_x86.Exec.outcome ->
  guest:int ->
  [ `Continue | `Invalidate ]
(** Post-execution check against the armed replay; [`Invalidate]
    signals the engine that guest state was repaired after a
    divergence. *)

val schedule : opt:Opt.t -> Repro_arm.Insn.t array -> Repro_arm.Insn.t array
(** The define-before-use scheduling pass (exposed for tests). *)

val stats_rule_covered : t -> int
val stats_fallback : t -> int
val stats_inter_tb_elisions : t -> int

val blacklist_size : t -> int
(** Guest PCs permanently routed to the baseline translator. *)

(** {2 Snapshot support} *)

type saved = {
  s_blacklist : Word32.t list;
  s_shadow_done : (Word32.t * int) list;
  s_shadow_tries : (Word32.t * int) list;
  s_rule_covered : int;
  s_fallback : int;
  s_inter_tb_elisions : int;
}
(** The translator's durable state (sorted for stable encodings).
    Per-TB metadata is not part of it: the code cache is rebuilt by
    deterministic re-translation on restore, and {!restore_cache_meta}
    re-applies the accumulated link-time state. *)

val save_state : t -> saved

val restore_state : t -> saved -> unit
(** Install [saved]'s tables, clear per-TB metadata and any pending
    shadow expectation. Call {e before} rebuilding the code cache
    (translation consults the blacklist), then {!restore_counters}
    after it (the rebuild itself bumps the counters). *)

val restore_counters : t -> saved -> unit

val cache_meta : t -> Repro_tcg.Tb.t -> (bool array * Repro_rules.Flagconv.t option) option
(** The link-time meta state of a live TB — per-slot flag-save
    elisions and the entry flag-convention assumption — or [None] for
    TBs the rule emitter did not produce (baseline fallbacks). *)

val restore_cache_meta :
  t ->
  Repro_tcg.Tb.t ->
  elide:bool array ->
  entry_conv:Repro_rules.Flagconv.t option ->
  unit
(** Re-apply captured link-time meta to a freshly rebuilt TB,
    re-emitting its code if it differs from the just-translated
    default — the rebuilt prog becomes bit-identical to the captured
    one. *)
