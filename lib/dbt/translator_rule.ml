open Repro_common
module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
module Cpu = Repro_arm.Cpu
module Interp = Repro_arm.Interp
module Mem = Repro_arm.Mem
module Bus = Repro_machine.Bus
module X = Repro_x86.Insn
module Exec = Repro_x86.Exec
module Stats = Repro_x86.Stats
module Tb = Repro_tcg.Tb
module Runtime = Repro_tcg.Runtime
module Envspec = Repro_tcg.Envspec
module Costs = Repro_tcg.Costs
module Translator_qemu = Repro_tcg.Translator_qemu
module Flagconv = Repro_rules.Flagconv
module Pinmap = Repro_rules.Pinmap
module Rule = Repro_rules.Rule
module Ruleset = Repro_rules.Ruleset
module Fi = Repro_faultinject.Faultinject
module Trace = Repro_observe.Trace
module Ledger = Repro_observe.Ledger
module Covscope = Repro_covscope

(* Per-TB metadata the emitter produces and the linker consumes. *)
type meta = {
  insns : A.t array;  (* post-scheduling *)
  origins : int array;
  mutable elide : bool array;
  mutable entry_conv : Flagconv.t option;
  mutable exit_states : Emitter.exit_state array;
  mutable first_flag_is_def : bool;
  mutable rules_used : (Rule.t * int) list;
      (* distinct rules in the current emission, each with the guest
         register def-mask of its matched instructions *)
  shadowable : bool;  (* replayable on the reference interpreter *)
  hoists : int;  (* III-D.1 hoists the scheduler applied to [insns] *)
  chunks : (Word32.t * A.t array * int array * int) array;
      (* Non-empty iff this meta describes a fused superblock: per
         constituent chunk, its head guest PC, scheduled instructions,
         origin indices and hoist count — everything [Emitter.emit_region]
         needs to re-emit the region in place. *)
}

(* The reference-replay result shadow verification compares against:
   architectural state after the TB plus the byte-level memory effect
   (an overlay — replay stores never touch the real machine). *)
type expectation = {
  exp_tb : int;
  exp_regs : int array;  (* r0..r14 *)
  exp_pc : Word32.t;
  exp_flags : Word32.t;  (* NZCV in bits 31..28 *)
  writes : (int, int) Hashtbl.t;  (* physical byte address -> value *)
}

type t = {
  opt : Opt.t;
  ruleset : Ruleset.t;
  metas : (int, meta) Hashtbl.t;
  shadow_depth : int;
  quarantine_threshold : int;
  blacklist : (Word32.t, unit) Hashtbl.t;  (* guest PCs sent to baseline *)
  shadow_done : (Word32.t, int) Hashtbl.t;  (* completed comparisons per PC *)
  shadow_tries : (Word32.t, int) Hashtbl.t;  (* armed replays per PC *)
  mutable pending : expectation option;
  mutable rule_covered : int;
  mutable fallback : int;
  mutable inter_tb_elisions : int;
  mutable ledger : Ledger.t option;
      (* coordination-savings sink; detachable (snapshot cache rebuild
         re-runs build_tb/re_emit and must not re-record statics) *)
  mutable cov_static : Covscope.Static.t option;
      (* translation-time side of the coverage per-rule ledger; same
         detach discipline as [ledger] *)
}

let create ~opt ~ruleset ?(shadow_depth = 0) ?(quarantine_threshold = 2) ?ledger () =
  {
    opt;
    ruleset;
    metas = Hashtbl.create 256;
    shadow_depth;
    quarantine_threshold;
    blacklist = Hashtbl.create 16;
    shadow_done = Hashtbl.create 64;
    shadow_tries = Hashtbl.create 64;
    pending = None;
    rule_covered = 0;
    fallback = 0;
    inter_tb_elisions = 0;
    ledger;
    cov_static = None;
  }

let set_ledger t l = t.ledger <- l
let ledger t = t.ledger
let set_cov_static t s = t.cov_static <- s
let cov_static t = t.cov_static

(* First emissions record their rule-template sites; [re_emit] does
   not (the sites were already counted when the TB was first built). *)
let record_cov_sites t (r : Emitter.result) =
  match t.cov_static with
  | None -> ()
  | Some s ->
    List.iter
      (fun (id, n) -> Covscope.Static.record s ~rule:id ~host_insns:n)
      r.Emitter.cov_sites

(* ---------- III-D-1: define-before-use scheduling ----------

   When a flag producer P and its consumer C are separated by
   independent instructions (typically a ld/st that will force a
   coordination pair around the helper while flags are live), hoist
   the independent block above P so P and C become adjacent. *)

let is_store (m : A.t) =
  match m.A.op with A.Str _ | A.Stm _ -> true | _ -> false

let independent_of_producer (m : A.t) (p : A.t) =
  let defs_m = A.defs m and uses_m = A.uses m in
  let defs_p = A.defs p and uses_p = A.uses p in
  defs_m land (uses_p lor defs_p) = 0
  && uses_m land defs_p = 0
  && (not (A.reads_flags m))
  && (not (A.writes_flags m))
  && (not (A.is_system_level m))
  (* Stores are never hoisted: an MMIO store may halt or trap the
     machine, making instructions between it and its original position
     observable. Loads in our platform are side-effect free (Fig. 12
     hoists an ldr). *)
  && not (is_store m)

let is_ender (i : A.t) =
  A.is_branch i
  ||
  match i.A.op with
  | A.Svc _ | A.Udf _ | A.Cps _ | A.Mcr _ | A.Msr { write_control = true; _ } -> true
  | _ -> false

let schedule_indexed ?hoists ~opt insns =
  let tagged = Array.mapi (fun i x -> (x, i)) insns in
  if not opt.Opt.sched_dbu then tagged
  else begin
    let lst = ref (Array.to_list tagged) in
    let changed = ref true in
    let guard = ref 0 in
    while !changed && !guard < 8 do
      changed := false;
      incr guard;
      let arr = Array.of_list !lst in
      let n = Array.length arr in
      (try
         for i = 0 to n - 1 do
           let p, _ = arr.(i) in
           if A.writes_flags p && p.A.cond = Cond.AL && not (is_ender p) then begin
             (* find the consumer *)
             let rec find_consumer j =
               if j >= n then None
               else if A.reads_flags (fst arr.(j)) then Some j
               else if A.writes_flags (fst arr.(j)) then None
               else find_consumer (j + 1)
             in
             match find_consumer (i + 1) with
             | Some j when j > i + 1 ->
               let between = Array.to_list (Array.sub arr (i + 1) (j - i - 1)) in
               if
                 List.for_all
                   (fun (m, _) -> independent_of_producer m p && not (is_ender m))
                   between
               then begin
                 (* hoist [between] above P, keeping internal order *)
                 let prefix = Array.to_list (Array.sub arr 0 i) in
                 let suffix = Array.to_list (Array.sub arr j (n - j)) in
                 lst := prefix @ between @ [ arr.(i) ] @ suffix;
                 (match hoists with Some h -> incr h | None -> ());
                 changed := true;
                 raise Exit
               end
             | _ -> ()
           end
         done
       with Exit -> ())
    done;
    Array.of_list !lst
  end

let schedule ~opt insns = Array.map fst (schedule_indexed ~opt insns)

(* ---------- shadow verification (replay on the reference) ----------

   A TB is replayable when every instruction's effect is confined to
   the current-view registers, NZCV and ordinary RAM: no system-level
   instructions (mode/cp15/PSR effects need helper semantics), no PC
   destinations outside branches (an exception-return [movs pc] or an
   [ldm {..pc}] would need banked state the replay CPU copy lacks). *)

let shadowable_insn (i : A.t) =
  (not (A.is_system_level i))
  &&
  match i.A.op with
  | A.Udf _ -> false
  | A.Dp { op; rd; _ } -> A.dp_op_is_test op || rd <> 15
  | A.Mul { rd; _ } -> rd <> 15
  | A.Mull { rdlo; rdhi; _ } -> rdlo <> 15 && rdhi <> 15
  | A.Clz { rd; _ } -> rd <> 15
  | A.Movw { rd; _ } | A.Movt { rd; _ } -> rd <> 15
  | A.Ldr { rd; _ } | A.Ldrs { rd; _ } -> rd <> 15
  | A.Str _ | A.Stm _ -> true
  | A.Ldm { regs; _ } -> regs land 0x8000 = 0
  | A.B _ | A.Bx _ | A.Nop -> true
  | A.Mrs _ | A.Msr _ | A.Svc _ | A.Cps _ | A.Mcr _ | A.Mrc _ | A.Vmsr _
  | A.Vmrs _ -> false

exception Shadow_abort
(* Replay crossed a boundary it cannot model purely (MMIO, bus error,
   guest exception): discard the comparison. *)

let count tbl key = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0
let bump tbl key = Hashtbl.replace tbl key (count tbl key + 1)

(* Run the reference interpreter over the TB's guest instructions from
   the current entry state, against an overlay memory view: loads see
   the machine plus earlier replay stores, stores only the overlay. *)
let replay (rt : Runtime.t) (tb : Tb.t) =
  let env = Runtime.env rt in
  let bus = rt.Runtime.bus in
  let scpu = Cpu.of_snapshot (Cpu.to_snapshot rt.Runtime.cpu) in
  for i = 0 to 14 do
    Cpu.set_reg scpu i env.(Envspec.reg i)
  done;
  Cpu.set_pc scpu tb.Tb.guest_pc;
  Cpu.set_flags scpu (Cond.flags_of_word (Envspec.flags_word env));
  let writes : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let read_byte paddr =
    match Hashtbl.find_opt writes paddr with
    | Some b -> b
    | None -> (
      match Bus.read8 bus paddr with Ok b -> b | Error () -> raise Shadow_abort)
  in
  let xlate vaddr ~access ~privileged =
    match Repro_mmu.Mmu.translate bus scpu vaddr ~access ~privileged with
    | Error f -> Error f
    | Ok paddr ->
      if Bus.is_ram bus paddr then Ok paddr else raise Shadow_abort
  in
  let aligned width vaddr =
    match width with
    | Mem.W8 -> true
    | Mem.W16 -> vaddr land 1 = 0
    | Mem.W32 -> vaddr land 3 = 0
  in
  let nbytes = function Mem.W8 -> 1 | Mem.W16 -> 2 | Mem.W32 -> 4 in
  let read_bytes paddr n =
    let v = ref 0 in
    for k = n - 1 downto 0 do
      v := (!v lsl 8) lor read_byte (paddr + k)
    done;
    !v
  in
  let load width ~privileged vaddr =
    if not (aligned width vaddr) then
      Error { Mem.vaddr; access = Mem.Load; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Load ~privileged with
      | Error f -> Error f
      | Ok paddr -> Ok (read_bytes paddr (nbytes width))
  in
  let store width ~privileged vaddr value =
    if not (aligned width vaddr) then
      Error { Mem.vaddr; access = Mem.Store; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Store ~privileged with
      | Error f -> Error f
      | Ok paddr ->
        for k = 0 to nbytes width - 1 do
          Hashtbl.replace writes (paddr + k) ((value lsr (8 * k)) land 0xFF)
        done;
        Ok ()
  in
  let fetch ~privileged vaddr =
    if vaddr land 3 <> 0 then
      Error { Mem.vaddr; access = Mem.Fetch; kind = Mem.Alignment }
    else
      match xlate vaddr ~access:Mem.Fetch ~privileged with
      | Error f -> Error f
      | Ok paddr -> Ok (read_bytes paddr 4)
  in
  let smem = { Mem.load; store; fetch; flush_tlb = (fun () -> ()) } in
  match
    for _ = 1 to tb.Tb.guest_len do
      match Interp.step scpu smem ~irq:false with
      | Interp.Stepped -> ()
      | Interp.Took_exception _ | Interp.Decode_error _ -> raise Shadow_abort
    done
  with
  | () ->
    Some
      {
        exp_tb = tb.Tb.id;
        exp_regs = Array.init 15 (Cpu.get_reg scpu);
        exp_pc = Cpu.get_pc scpu;
        exp_flags = Cond.flags_to_word (Cpu.get_flags scpu);
        writes;
      }
  | exception Shadow_abort -> None

(* Sampling policy: the first [shadow_depth] engine-dispatched
   executions of each rule-carrying, replayable TB address are
   verified (chained executions are not interrupted; a bounded number
   of armed-but-discarded replays per address stops MMIO-adjacent
   blocks from being replayed forever). *)
let arm_shadow t (rt : Runtime.t) (tb : Tb.t) =
  t.pending <- None;
  if t.shadow_depth > 0 && not (Hashtbl.mem t.blacklist tb.Tb.guest_pc) then
    match Hashtbl.find_opt t.metas tb.Tb.id with
    | Some m when m.rules_used <> [] && m.shadowable ->
      if
        count t.shadow_done tb.Tb.guest_pc < t.shadow_depth
        && count t.shadow_tries tb.Tb.guest_pc < 4 * t.shadow_depth
      then begin
        bump t.shadow_tries tb.Tb.guest_pc;
        let stats = Runtime.stats rt in
        Stats.charge_tag stats X.Tag_glue (Costs.interp_one () * tb.Tb.guest_len);
        t.pending <- replay rt tb
      end
    | _ -> ()

let on_executed t (rt : Runtime.t) (tb : Tb.t) ~outcome ~guest =
  match t.pending with
  | None -> `Continue
  | Some exp -> (
    t.pending <- None;
    ignore guest;
    (* [Exited] through a non-irq slot means the block ran to its end:
       mid-block departures are the irq slot or a helper stop
       (exceptions, halts), both excluded below. The guest count is NOT
       compared to [guest_len]: condition-failed instructions retire
       without ticking the counter. *)
    match outcome with
    | Exec.Exited slot
      when exp.exp_tb = tb.Tb.id && tb.Tb.exits.(slot) <> Tb.Irq_deliver -> (
      let stats = Runtime.stats rt in
      let env = Runtime.env rt in
      stats.Stats.shadow_replays <- stats.Stats.shadow_replays + 1;
      (match rt.Runtime.trace with
      | Some tr -> Trace.emit tr ~a:tb.Tb.guest_pc Shadow "replay"
      | None -> ());
      bump t.shadow_done tb.Tb.guest_pc;
      (* With the flag save elided from this exit (inter-TB), env's
         flag word is architecturally stale — skip the comparison but
         keep the replay's flags for repair. *)
      let flags_comparable =
        match Hashtbl.find_opt t.metas tb.Tb.id with
        | Some m -> not m.elide.(slot)
        | None -> false
      in
      let reg_divergence = ref 0 in
      for i = 0 to 14 do
        if env.(Envspec.reg i) <> exp.exp_regs.(i) then
          reg_divergence := !reg_divergence lor (1 lsl i)
      done;
      if env.(Envspec.pc) <> exp.exp_pc then
        reg_divergence := !reg_divergence lor (1 lsl 15);
      let flags_diverged =
        flags_comparable
        && Envspec.flags_word env land 0xF0000000
           <> exp.exp_flags land 0xF0000000
      in
      let mem_diverged = ref false in
      Hashtbl.iter
        (fun paddr b ->
          match Bus.read8 rt.Runtime.bus paddr with
          | Ok b' when b' = b -> ()
          | Ok _ | Error () -> mem_diverged := true)
        exp.writes;
      if !reg_divergence = 0 && (not flags_diverged) && not !mem_diverged then
        `Continue
      else begin
        stats.Stats.shadow_divergences <- stats.Stats.shadow_divergences + 1;
        (match rt.Runtime.trace with
        | Some tr ->
          Trace.emit tr ~a:tb.Tb.guest_pc ~b:!reg_divergence Shadow "divergence"
        | None -> ());
        (* Repair guest state from the reference replay... *)
        for i = 0 to 14 do
          env.(Envspec.reg i) <- exp.exp_regs.(i)
        done;
        env.(Envspec.pc) <- exp.exp_pc;
        Envspec.set_flags_both env (exp.exp_flags land 0xF0000000);
        Hashtbl.iter
          (fun paddr b -> Exec.write_ram8 rt.Runtime.ctx paddr b)
          exp.writes;
        Runtime.sync_env_to_cpu rt;
        (* ...blacklist the address (it retranslates via the baseline)
           and strike the implicated rules: those that wrote a diverged
           register, any flag-writing rule when the flags diverged, and
           every rule when only memory diverged (stores cannot be
           attributed). If attribution comes up empty, strike all. *)
        Hashtbl.replace t.blacklist tb.Tb.guest_pc ();
        (match Hashtbl.find_opt t.metas tb.Tb.id with
        | Some m ->
          let implicated (rule : Rule.t) defs =
            defs land !reg_divergence <> 0
            || (flags_diverged && rule.Rule.flags.Rule.guest_writes)
            || !mem_diverged
          in
          let targets =
            match List.filter (fun (r, d) -> implicated r d) m.rules_used with
            | [] -> m.rules_used
            | hits -> hits
          in
          List.iter
            (fun (rule, _) ->
              if Ruleset.strike t.ruleset rule ~threshold:t.quarantine_threshold
              then
                stats.Stats.rules_quarantined <- stats.Stats.rules_quarantined + 1)
            targets
        | None -> ());
        `Invalidate
      end)
    | _ ->
      (* IRQ preemption, a mid-TB guest exception or a helper stop:
         the TB did not run to a clean architectural exit, so the
         replay is not comparable. Discarded, not counted. *)
      `Continue)

(* ---------- translation ---------- *)

(* Fault point: a misdirected register spill in rule-generated code —
   the first env register write lands one slot over. Confined to
   r0..r13 so shadow verification can both detect and repair it. *)
let corrupt_prog (prog : Repro_x86.Prog.t) =
  let code = prog.Repro_x86.Prog.code in
  let n = Array.length code in
  let rec scan i =
    if i >= n then ()
    else
      match code.(i) with
      | X.Mov { width = X.W32; dst = X.Mem ({ seg = X.Env; disp; _ } as m); src }
        when disp land 3 = 0 && disp / 4 <= 12 ->
        code.(i) <- X.Mov { width = X.W32; dst = X.Mem { m with disp = disp + 4 }; src }
      | _ -> scan (i + 1)
  in
  scan 0

(* Fault point: rule-generated code sabotaged into a tight host loop —
   the first real instruction becomes a jump to itself. The TB never
   reaches an exit, burning its host fuel; only the engine's typed
   {!Repro_x86.Exec.Fuel_exhausted} watchdog path can recover. *)
let livelock_prog (prog : Repro_x86.Prog.t) =
  let code = prog.Repro_x86.Prog.code in
  let n = Array.length code in
  let fresh =
    1 + Hashtbl.fold (fun l _ acc -> max l acc) prog.Repro_x86.Prog.label_index 0
  in
  let rec scan i =
    if i >= n then ()
    else if Repro_x86.Prog.is_pseudo code.(i) then scan (i + 1)
    else begin
      Hashtbl.replace prog.Repro_x86.Prog.label_index fresh i;
      code.(i) <- X.Jmp fresh
    end
  in
  scan 0

let build_tb t (rt : Runtime.t) cache ~pc ~insns ~m =
  let privileged = Runtime.privileged rt in
  let r =
    Emitter.emit ~opt:t.opt ~ruleset:t.ruleset ~privileged ~tb_pc:pc ~insns:m.insns
      ~origins:m.origins ~elide_flag_save:m.elide ?entry_conv:m.entry_conv
      ~sched_hoists:m.hoists ()
  in
  t.rule_covered <- t.rule_covered + r.Emitter.rule_covered;
  t.fallback <- t.fallback + r.Emitter.fallback;
  m.exit_states <- r.Emitter.exit_states;
  m.first_flag_is_def <- r.Emitter.first_flag_is_def;
  m.rules_used <- r.Emitter.rules_used;
  (* Memory accesses hoisted above architecturally-earlier
     instructions (define-before-use scheduling): if such an access
     faults, the skipped instructions have not run in host order yet,
     so the runtime must replay them before exception entry. *)
  let fault_producers =
    let acc = ref [] in
    Array.iteri
      (fun k insn ->
        if A.is_memory_access insn then begin
          let q = m.origins.(k) in
          let skipped = ref [] in
          for j = k + 1 to Array.length m.origins - 1 do
            if m.origins.(j) < q then skipped := m.origins.(j) :: !skipped
          done;
          if !skipped <> [] then begin
            let pcs =
              List.sort compare !skipped
              |> List.map (fun o -> Word32.add pc (4 * o))
              |> Array.of_list
            in
            acc := (Word32.add pc (4 * q), pcs) :: !acc
          end
        end)
      m.insns;
    Array.of_list (List.rev !acc)
  in
  let tb =
    {
      Tb.id = Tb.Cache.next_id cache;
      guest_pc = pc;
      privileged;
      mmu_on = Repro_arm.Cpu.mmu_enabled rt.Runtime.cpu;
      prog = r.Emitter.prog;
      exits = r.Emitter.exits;
      links = Array.make Tb.exit_slots None;
      guest_insns = insns;
      guest_len = Array.length insns;
      fault_producers;
      translated_override = rt.Runtime.tb_override;
      injected = `None;
      prov = r.Emitter.prov;
      hot = 0;
      region_ids = [||];
    }
  in
  (match t.ledger with
  | Some l -> Ledger.record_static l r.Emitter.prov
  | None -> ());
  record_cov_sites t r;
  (match rt.Runtime.corrupt_override with
  | Some `Rule_corrupt ->
    (* Snapshot cache rebuild: re-apply the recorded corruption without
       touching the injector's PRNG stream. *)
    corrupt_prog tb.Tb.prog;
    tb.Tb.injected <- `Rule_corrupt
  | Some `Livelock ->
    livelock_prog tb.Tb.prog;
    tb.Tb.injected <- `Livelock
  | Some `None -> ()
  | None -> (
    match rt.Runtime.inject with
    | Some inj when r.Emitter.rule_covered > 0 ->
      if Fi.fire inj Fi.Rule_corrupt then begin
        corrupt_prog tb.Tb.prog;
        tb.Tb.injected <- `Rule_corrupt
      end
      else if Fi.fire inj Fi.Host_livelock then begin
        livelock_prog tb.Tb.prog;
        tb.Tb.injected <- `Livelock
      end
    | _ -> ()));
  tb

let translate t (rt : Runtime.t) cache ~pc =
  if Hashtbl.mem t.blacklist pc then begin
    let stats = Runtime.stats rt in
    stats.Stats.quarantine_fallbacks <- stats.Stats.quarantine_fallbacks + 1;
    Translator_qemu.translate rt cache ~pc
  end
  else
    let privileged = Runtime.privileged rt in
    match rt.Runtime.mem.Mem.fetch ~privileged pc with
    | Error f -> Error f
    | Ok _ ->
      (* Bailout ladder: emitter resource overflow retries with half
         the block, bottoming out at the single-instruction
         interpreter TB (shared with the baseline). *)
      let rec attempt cap =
        match Translator_qemu.fetch_block ?cap rt ~pc with
        | [] -> Ok (Translator_qemu.emulate_one_tb rt cache ~pc)
        | insns_list -> (
          let insns = Array.of_list insns_list in
          let hoists = ref 0 in
          let tagged = schedule_indexed ~hoists ~opt:t.opt insns in
          let m =
            {
              insns = Array.map fst tagged;
              origins = Array.map snd tagged;
              elide = Array.make Tb.exit_slots false;
              entry_conv = None;
              exit_states =
                Array.make Tb.exit_slots
                  { Emitter.conv_at_exit = None; flags_save_in_epilogue = false };
              first_flag_is_def = false;
              rules_used = [];
              shadowable = Array.for_all shadowable_insn (Array.map fst tagged);
              hoists = !hoists;
              chunks = [||];
            }
          in
          try
            let tb = build_tb t rt cache ~pc ~insns ~m in
            Hashtbl.replace t.metas tb.Tb.id m;
            Ok tb
          with Tb.Tb_too_complex ->
            let n = Array.length insns in
            if n <= 1 then Ok (Translator_qemu.emulate_one_tb rt cache ~pc)
            else attempt (Some (max 1 (n / 2))))
      in
      attempt None

(* Re-emit a TB in place after its meta changed (elision / entry
   assumption). The engine holds the tb record; only [prog] changes.
   Regions re-emit through the region emitter from their recorded
   chunk recipe — they are first-class citizens of the inter-TB
   optimization, on both sides of a chained edge. *)
let re_emit t (tb : Tb.t) m =
  let r =
    if m.chunks <> [||] then
      Emitter.emit_region ~opt:t.opt ~ruleset:t.ruleset ~privileged:tb.Tb.privileged
        ~chunks:m.chunks ~elide_flag_save:m.elide ?entry_conv:m.entry_conv ()
    else
      Emitter.emit ~opt:t.opt ~ruleset:t.ruleset ~privileged:tb.Tb.privileged
        ~tb_pc:tb.Tb.guest_pc ~insns:m.insns ~origins:m.origins ~elide_flag_save:m.elide
        ?entry_conv:m.entry_conv ~sched_hoists:m.hoists ()
  in
  m.exit_states <- r.Emitter.exit_states;
  m.rules_used <- r.Emitter.rules_used;
  tb.Tb.prog <- r.Emitter.prog;
  (* the static view tracks the live code: replace this TB's old
     contribution with the new emission's (a delta, so the translation
     count is not re-bumped) *)
  (match t.ledger with
  | Some l -> Ledger.record_static_delta l (Ledger.prov_diff ~old_:tb.Tb.prov r.Emitter.prov)
  | None -> ());
  tb.Tb.prov <- r.Emitter.prov;
  (* a fresh emission discards any injected code corruption *)
  tb.Tb.injected <- `None

(* ---------- hot-region superblocks ----------

   When the engine reports a TB hot, walk its hottest chain of direct
   successors (loop-closed or length-capped), fuse the trace through
   {!Emitter.emit_region} and install the superblock over the head PC.
   The constituents stay in the plain table: cold entries mid-trace
   (the region's interior is not addressable) still dispatch them, and
   an SMC flush simply drops both views. *)

let max_region_chunks = 8

(* Fuse an already-selected constituent trace and install the result.
   Shared between live formation and snapshot rebuild (which replays a
   recorded constituent list); returns [None] when the emitter rejects
   the trace. *)
let fuse_trace t (rt : Runtime.t) cache ~(trace : Tb.t list) =
  let head = List.hd trace in
  let chunk_of (tb : Tb.t) =
    let m = Hashtbl.find t.metas tb.Tb.id in
    (tb.Tb.guest_pc, m.insns, m.origins, m.hoists)
  in
  match
    let chunks = Array.of_list (List.map chunk_of trace) in
    let elide = Array.make Tb.region_exit_slots false in
    let r =
      Emitter.emit_region ~opt:t.opt ~ruleset:t.ruleset
        ~privileged:head.Tb.privileged ~chunks ~elide_flag_save:elide ()
    in
    (chunks, elide, r)
  with
  | exception Tb.Tb_too_complex -> None
  | exception Not_found -> None (* a constituent without meta: unfusable *)
  | chunks, elide, r ->
    let region =
      {
        Tb.id = Tb.Cache.next_id cache;
        guest_pc = head.Tb.guest_pc;
        privileged = head.Tb.privileged;
        mmu_on = head.Tb.mmu_on;
        prog = r.Emitter.prog;
        exits = r.Emitter.exits;
        links = Array.make Tb.region_exit_slots None;
        guest_insns =
          Array.concat (List.map (fun (tb : Tb.t) -> tb.Tb.guest_insns) trace);
        guest_len = List.fold_left (fun a (tb : Tb.t) -> a + tb.Tb.guest_len) 0 trace;
        fault_producers =
          Array.concat (List.map (fun (tb : Tb.t) -> tb.Tb.fault_producers) trace);
        translated_override = None;
        injected = `None;
        prov = r.Emitter.prov;
        hot = 0;
        region_ids = Array.of_list (List.map (fun (tb : Tb.t) -> tb.Tb.id) trace);
      }
    in
    let m =
      {
        insns = [||];
        origins = [||];
        elide;
        entry_conv = None;
        exit_states = r.Emitter.exit_states;
        first_flag_is_def = r.Emitter.first_flag_is_def;
        rules_used = r.Emitter.rules_used;
        (* shadow verification replays straight-line blocks on the
           reference interpreter; a multi-path region is not one *)
        shadowable = false;
        hoists = 0;
        chunks;
      }
    in
    Hashtbl.replace t.metas region.Tb.id m;
    let pages =
      List.concat_map
        (fun (tb : Tb.t) ->
          let first = tb.Tb.guest_pc lsr 12 in
          let last = (tb.Tb.guest_pc + (4 * tb.Tb.guest_len) - 1) lsr 12 in
          if first = last then [ first ] else [ first; last ])
        trace
      |> List.sort_uniq compare
    in
    Tb.Cache.add_region cache region ~pages;
    (* Stale chained jumps into the head would keep bypassing the
       region; force the next transfer there through dispatch. *)
    Tb.Cache.unlink_target cache head;
    (match t.ledger with
    | Some l -> Ledger.record_static l r.Emitter.prov
    | None -> ());
    record_cov_sites t r;
    let stats = Runtime.stats rt in
    Stats.charge_tag stats X.Tag_glue
      (Costs.region_form_per_guest_insn () * region.Tb.guest_len);
    stats.Stats.regions_formed <- stats.Stats.regions_formed + 1;
    Some region

(* The engine's [on_hot] hook: select the trace, then fuse. *)
let form_region t (rt : Runtime.t) cache (head : Tb.t) =
  let fusable_head =
    t.opt.Opt.regions
    && (not (Tb.is_region head))
    && head.Tb.injected = `None
    && (not (Hashtbl.mem t.blacklist head.Tb.guest_pc))
    && (not (Tb.Cache.near_capacity cache))
    && Hashtbl.mem t.metas head.Tb.id
  in
  if not fusable_head then None
  else begin
    (* An interior chunk must end in a plain B (both directions
       seamable) or fall through (no ender at all). *)
    let can_interior (tb : Tb.t) =
      match Hashtbl.find_opt t.metas tb.Tb.id with
      | None -> false
      | Some m ->
        let n = Array.length m.insns in
        n > 0
        &&
        (match m.insns.(n - 1).A.op with
        | A.B _ -> true
        | _ -> not (Array.exists is_ender m.insns))
    in
    (* Hottest linked direct successor; first slot wins ties so the
       choice is deterministic under snapshot replay. *)
    let pick_succ (tb : Tb.t) =
      let best = ref None in
      Array.iteri
        (fun i l ->
          match (tb.Tb.exits.(i), l) with
          | Tb.Direct _, Some (s : Tb.t) -> (
            match !best with
            | Some (b : Tb.t) when b.Tb.hot >= s.Tb.hot -> ()
            | _ -> best := Some s)
          | _ -> ())
        tb.Tb.links;
      !best
    in
    let seen = Hashtbl.create 8 in
    Hashtbl.replace seen head.Tb.id ();
    let rev_trace = ref [ head ] in
    let count = ref 1 in
    let cur = ref head in
    let stop = ref false in
    while not !stop do
      if !count >= max_region_chunks then stop := true
      else if not (can_interior !cur) then stop := true
      else
        match pick_succ !cur with
        | None -> stop := true
        | Some s ->
          if
            s.Tb.guest_pc = head.Tb.guest_pc (* loop closed *)
            || Tb.is_region s
            || s.Tb.injected <> `None
            || s.Tb.privileged <> head.Tb.privileged
            || s.Tb.mmu_on <> head.Tb.mmu_on
            || Hashtbl.mem seen s.Tb.id
            || Hashtbl.mem t.blacklist s.Tb.guest_pc
            || not (Hashtbl.mem t.metas s.Tb.id)
          then stop := true
          else begin
            Hashtbl.replace seen s.Tb.id ();
            rev_trace := s :: !rev_trace;
            incr count;
            cur := s
          end
    done;
    if !count < 2 then None
    else begin
      (* An entry assumption binds the head to its eliding chained
         predecessors, and the region is reached through dispatch —
         where the assumption would read stale env flags. Dissolve the
         contract first: every predecessor edge into the head saves its
         flags again, and the head stops assuming. *)
      (match Hashtbl.find_opt t.metas head.Tb.id with
      | Some hm when hm.entry_conv <> None ->
        List.iter
          (fun (p : Tb.t) ->
            match Hashtbl.find_opt t.metas p.Tb.id with
            | None -> ()
            | Some pm ->
              let changed = ref false in
              Array.iteri
                (fun slot el ->
                  if el && slot < Array.length p.Tb.exits then
                    match p.Tb.exits.(slot) with
                    | Tb.Direct pc
                      when pc = head.Tb.guest_pc
                           && p.Tb.privileged = head.Tb.privileged
                           && p.Tb.mmu_on = head.Tb.mmu_on ->
                      pm.elide.(slot) <- false;
                      changed := true
                    | _ -> ())
                pm.elide;
              if !changed then re_emit t p pm)
          (Tb.Cache.to_list cache @ Tb.Cache.regions_list cache);
        hm.entry_conv <- None;
        re_emit t head hm
      | _ -> ());
      fuse_trace t rt cache ~trace:(List.rev !rev_trace)
    end
  end

(* ---------- III-C-3: inter-TB elimination at chain time ---------- *)

let link_hook t ~pred ~slot ~succ =
  if t.opt.Opt.inter_tb && pred.Tb.id <> succ.Tb.id then
    match (Hashtbl.find_opt t.metas pred.Tb.id, Hashtbl.find_opt t.metas succ.Tb.id) with
    | Some pm, Some sm -> (
      let ex = pm.exit_states.(slot) in
      if
        ex.Emitter.flags_save_in_epilogue
        && (not pm.elide.(slot))
        && sm.first_flag_is_def
      then
        match ex.Emitter.conv_at_exit with
        | None -> ()
        | Some conv -> (
          match sm.entry_conv with
          | Some existing when existing <> conv -> () (* incompatible assumption *)
          | Some _ ->
            pm.elide.(slot) <- true;
            t.inter_tb_elisions <- t.inter_tb_elisions + 1;
            re_emit t pred pm
          | None ->
            (* First elided edge into succ: give it the assumption and
               the EFLAGS-spilling interrupt stub. *)
            sm.entry_conv <- Some conv;
            re_emit t succ sm;
            pm.elide.(slot) <- true;
            t.inter_tb_elisions <- t.inter_tb_elisions + 1;
            re_emit t pred pm))
    | _ -> ()

(* ---------- engine-dispatch entry restore ---------- *)

let on_enter t (rt : Runtime.t) (tb : Tb.t) =
  (match Hashtbl.find_opt t.metas tb.Tb.id with
  | None -> ()
  | Some m -> (
    match m.entry_conv with
    | None -> ()
    | Some conv ->
      (* The TB assumes guest flags live in EFLAGS under [conv];
         install them from env (engine-side Sync-restore). *)
      let env = Runtime.env rt in
      let arm = Envspec.flags_word env in
      let bits =
        if Flagconv.carry_inverted conv then Envspec.to_canonical arm else arm
      in
      Exec.set_flags_word rt.Runtime.ctx bits;
      let stats = Runtime.stats rt in
      Stats.charge_tag stats X.Tag_sync 2;
      stats.Stats.sync_ops <- stats.Stats.sync_ops + 1;
      (* III-C.3 pays an engine-side restore on every engine entry of
         an assuming TB: a negative dynamic saving *)
      (match t.ledger with
      | Some l -> Ledger.add_dynamic l Ledger.Inter_tb ~ops:(-1) ~insns:(-2)
      | None -> ());
      (match rt.Runtime.trace with
      | Some tr -> Trace.emit tr ~a:tb.Tb.guest_pc Sync "entry_restore"
      | None -> ())));
  arm_shadow t rt tb

let stats_rule_covered t = t.rule_covered
let stats_fallback t = t.fallback
let stats_inter_tb_elisions t = t.inter_tb_elisions
let blacklist_size t = Hashtbl.length t.blacklist

(* ---------- snapshot support ----------

   The translator's durable state is small: the PC blacklist, the
   per-PC shadow-sampling counters and three statistics. Per-TB metas
   are NOT serialized — the code cache is rebuilt on restore by
   re-translation (deterministic given the restored RAM, ruleset
   health and blacklist: every quarantine/blacklist change flushes the
   whole cache, so live TBs always postdate the last such change), and
   [restore_cache_meta] re-applies the link-time elision state the
   linker had accumulated. [pending] is always [None] at a checkpoint
   (checkpoints fire at TB boundaries before [on_enter] arms it). *)

type saved = {
  s_blacklist : Word32.t list;
  s_shadow_done : (Word32.t * int) list;
  s_shadow_tries : (Word32.t * int) list;
  s_rule_covered : int;
  s_fallback : int;
  s_inter_tb_elisions : int;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let save_state t =
  {
    s_blacklist = List.map fst (sorted_bindings t.blacklist);
    s_shadow_done = sorted_bindings t.shadow_done;
    s_shadow_tries = sorted_bindings t.shadow_tries;
    s_rule_covered = t.rule_covered;
    s_fallback = t.fallback;
    s_inter_tb_elisions = t.inter_tb_elisions;
  }

(* The counters live apart from the tables because the cache rebuild
   itself goes through [build_tb]/[re_emit], which bump them: restore
   the tables first, rebuild, then pin the counters back. *)
let restore_counters t s =
  t.rule_covered <- s.s_rule_covered;
  t.fallback <- s.s_fallback;
  t.inter_tb_elisions <- s.s_inter_tb_elisions

let restore_state t s =
  Hashtbl.reset t.blacklist;
  List.iter (fun pc -> Hashtbl.replace t.blacklist pc ()) s.s_blacklist;
  Hashtbl.reset t.shadow_done;
  List.iter (fun (pc, n) -> Hashtbl.replace t.shadow_done pc n) s.s_shadow_done;
  Hashtbl.reset t.shadow_tries;
  List.iter (fun (pc, n) -> Hashtbl.replace t.shadow_tries pc n) s.s_shadow_tries;
  t.pending <- None;
  Hashtbl.reset t.metas;
  restore_counters t s

let cache_meta t (tb : Tb.t) =
  match Hashtbl.find_opt t.metas tb.Tb.id with
  | None -> None
  | Some m -> Some (Array.copy m.elide, m.entry_conv)

let restore_cache_meta t (tb : Tb.t) ~elide ~entry_conv =
  match Hashtbl.find_opt t.metas tb.Tb.id with
  | None -> ()
  | Some m ->
    let dirty = entry_conv <> m.entry_conv || elide <> m.elide in
    if dirty then begin
      m.elide <- Array.copy elide;
      m.entry_conv <- entry_conv;
      (* Final prog = a pure function of the meta: one re-emission
         reproduces whatever sequence of link-time re-emissions the
         original run performed, in any order. The counters the
         re-emission would perturb are restored afterwards. *)
      re_emit t tb m
    end
