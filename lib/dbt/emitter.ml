open Repro_common
module A = Repro_arm.Insn
module Cond = Repro_arm.Cond
module X = Repro_x86.Insn
module Prog = Repro_x86.Prog
module Tb = Repro_tcg.Tb
module Envspec = Repro_tcg.Envspec
module Helpers = Repro_tcg.Helpers
module Rule = Repro_rules.Rule
module Ruleset = Repro_rules.Ruleset
module Flagconv = Repro_rules.Flagconv
module Pinmap = Repro_rules.Pinmap
module Ledger = Repro_observe.Ledger
module Attr = Repro_covscope.Attr

(* Where the guest condition flags currently live. [F_env]: env is
   authoritative, EFLAGS holds nothing. [F_both conv]: both valid.
   [F_dirty conv]: EFLAGS authoritative, env stale — a Sync-save is
   owed before any QEMU involvement. *)
type fl_state = F_env | F_both of Flagconv.t | F_dirty of Flagconv.t

type exit_state = { conv_at_exit : Flagconv.t option; flags_save_in_epilogue : bool }

type result = {
  prog : Prog.t;
  exits : Tb.exit_kind array;
  exit_states : exit_state array;
  first_flag_is_def : bool;
  rule_covered : int;
  fallback : int;
  rules_used : (Rule.t * int) list;
  prov : int array;
  cov_sites : (int * int) list;
}

let canonical_bit = 0x2000_0000

(* ---------- coordination-savings provenance ----------

   Counterfactual cost table for the ledger: how many real host
   instructions each coordination primitive emits under each design.
   [Count] pseudos execute free ({!Repro_x86.Prog.is_pseudo}), so they
   are not counted; every save/restore carries exactly one sync op
   (its [Cnt_sync_op]) in both designs.  The numbers mirror
   [flags_save]/[flags_restore] below — the assertion-backed ledger
   tests catch drift. *)

let save_cost ~reduction conv =
  if reduction then
    match conv with
    | Flagconv.Sub_like | Flagconv.Canonical -> 3
    | Flagconv.Add_like -> 4
    | Flagconv.Logic_like -> 5
  else match conv with Flagconv.Logic_like -> 7 | _ -> 9

let restore_cost ~reduction = if reduction then 2 else 11

type st = {
  b : Prog.builder;
  opt : Opt.t;
  ruleset : Ruleset.t;
  privileged : bool;
  (* [tb_pc]/[insns]/[origins] are per-chunk during region emission:
     [emit_region] rebinds them chunk by chunk over one shared builder. *)
  mutable tb_pc : Word32.t;
  mutable insns : A.t array;
  mutable origins : int array;  (* original (pre-scheduling) index of each insn *)
  mutable loaded : int;  (* guest-reg bitmask valid in pinned host regs *)
  mutable dirty : int;   (* guest-reg bitmask where host is newer than env *)
  mutable fl : fl_state;
  (* exit bookkeeping *)
  exits : Tb.exit_kind array;
  exit_states : exit_state array;
  mutable slots_used : int;
  exit_seen : bool array;
  elide : bool array;
  entry_conv : Flagconv.t option;
  max_slots : int;  (* [Tb.slot_irq] for plain TBs, [Tb.region_exit_slots] for regions *)
  (* irq check *)
  irq_label : int;
  mutable irq_resume_pc : Word32.t;   (* guest PC the irq stub publishes *)
  mutable irq_emitted : bool;
  mutable irq_sched_index : int;      (* insn index before which the check goes; -1 = head *)
  (* stats *)
  mutable rule_covered : int;
  mutable fallback : int;
  mutable rules_used : (Rule.t * int) list;
      (* distinct rules with the OR of their matched insns' guest
         def-masks — shadow verification attributes divergences by
         destination register *)
  prov : int array;  (* Ledger provenance accumulated during emission *)
  in_region : bool;  (* Region tier for coverage attribution *)
  mutable cov_sites : (int * int) list;  (* (rule id, emitted host insns) per site *)
}

(* Coverage tier of code this emitter translates natively: the rule
   tier in plain TBs, the region tier inside fused superblocks. *)
let native_tier st = if st.in_region then Attr.Region else Attr.Rule

let env_op slot = X.Mem (X.env_slot slot)
let emit st ?tag i = Prog.emit st.b ?tag i
let credit st pass ~ops ~insns = Ledger.prov_add st.prov pass ~ops ~insns

let popcount mask =
  let n = ref 0 in
  for r = 0 to 14 do
    if mask land (1 lsl r) <> 0 then incr n
  done;
  !n

(* Guest PC of the instruction at (scheduled) index [idx]: scheduling
   permutes emission order but every instruction keeps its original
   address for branch targets and fault/emulation resume points. *)
let pc_at st idx = Word32.add st.tb_pc (4 * st.origins.(idx))

(* ---------- register residency ---------- *)

let host_of r = match Pinmap.pin r with Some h -> h | None -> assert false

let ensure_loaded st r =
  if Pinmap.is_pinned r && st.loaded land (1 lsl r) = 0 then begin
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = X.Reg (host_of r); src = env_op (Envspec.reg r) });
    st.loaded <- st.loaded lor (1 lsl r)
  end

let ensure_loaded_mask st mask =
  for r = 0 to 14 do
    if mask land (1 lsl r) <> 0 then ensure_loaded st r
  done

let mark_def st r =
  if Pinmap.is_pinned r then begin
    st.loaded <- st.loaded lor (1 lsl r);
    st.dirty <- st.dirty lor (1 lsl r)
  end

let store_dirty_regs st =
  for r = 0 to 14 do
    if st.dirty land (1 lsl r) <> 0 then
      emit st ~tag:X.Tag_sync
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg r); src = X.Reg (host_of r) })
  done;
  st.dirty <- 0

(* Read a guest register into a specific host register (argument
   setup), regardless of pinning. *)
let read_reg_to st ~dst r =
  if Pinmap.is_pinned r && st.loaded land (1 lsl r) <> 0 then
    emit st (X.Mov { width = X.W32; dst = X.Reg dst; src = X.Reg (host_of r) })
  else emit st (X.Mov { width = X.W32; dst = X.Reg dst; src = env_op (Envspec.reg r) })

(* ---------- flag coordination ---------- *)

(* Sync-save: spill EFLAGS to env. With III-B reduction: 3-5 host
   instructions into the packed slot (+ tag). Without: the one-to-many
   parse into QEMU's four per-flag slots (~10, plus it is what makes
   the unoptimized design slower than QEMU). Flag-preserving unless a
   polarity/mask fix is needed; returns the fl state after. *)
let flags_save st conv =
  if st.opt.Opt.reduction then begin
    emit st ~tag:X.Tag_sync (X.Count X.Cnt_sync_op);
    emit st ~tag:X.Tag_sync (X.Savef X.rax);
    let clobbered =
      match conv with
      | Flagconv.Sub_like | Flagconv.Canonical -> false
      | Flagconv.Add_like ->
        emit st ~tag:X.Tag_sync
          (X.Alu { op = X.Xor; dst = X.Reg X.rax; src = X.Imm canonical_bit });
        true
      | Flagconv.Logic_like ->
        (* keep N/Z, force C=0 (canonical bit29 = ¬C = 1), V=0 *)
        emit st ~tag:X.Tag_sync
          (X.Alu { op = X.And; dst = X.Reg X.rax; src = X.Imm 0xC000_0000 });
        emit st ~tag:X.Tag_sync
          (X.Alu { op = X.Or; dst = X.Reg X.rax; src = X.Imm canonical_bit });
        true
    in
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = env_op Envspec.ccr_packed; src = X.Reg X.rax });
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = env_op Envspec.ccr_tag; src = X.Imm 1 });
    (* III-B: packed save vs the one-to-many parse (same 1 sync op) *)
    credit st Ledger.Reduction ~ops:0
      ~insns:(save_cost ~reduction:false conv - save_cost ~reduction:true conv);
    st.fl <- (if clobbered then F_env else F_both conv)
  end
  else begin
    (* Parsed (one-to-many) form: setcc per flag — flag-preserving. *)
    emit st ~tag:X.Tag_sync (X.Count X.Cnt_sync_op);
    let set cc slot =
      emit st ~tag:X.Tag_sync (X.Setcc { cc; dst = X.rax });
      emit st ~tag:X.Tag_sync
        (X.Mov { width = X.W32; dst = env_op slot; src = X.Reg X.rax })
    in
    let seti v slot =
      emit st ~tag:X.Tag_sync (X.Mov { width = X.W32; dst = env_op slot; src = X.Imm v })
    in
    set X.S Envspec.cc_n;
    set X.E Envspec.cc_z;
    (match conv with
    | Flagconv.Add_like -> set X.B Envspec.cc_c
    | Flagconv.Sub_like | Flagconv.Canonical -> set X.AE Envspec.cc_c
    | Flagconv.Logic_like -> seti 0 Envspec.cc_c);
    (match conv with
    | Flagconv.Logic_like -> seti 0 Envspec.cc_v
    | Flagconv.Add_like | Flagconv.Sub_like | Flagconv.Canonical -> set X.O Envspec.cc_v);
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = env_op Envspec.ccr_tag; src = X.Imm 0 });
    st.fl <- F_both conv
  end

(* Sync-restore: install the guest flags from env into EFLAGS in the
   Canonical convention. *)
let flags_restore st =
  emit st ~tag:X.Tag_sync (X.Count X.Cnt_sync_op);
  if st.opt.Opt.reduction then begin
    (* env invariant under reduction: the packed slot is always
       maintained (helpers keep both forms coherent). *)
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op Envspec.ccr_packed });
    emit st ~tag:X.Tag_sync (X.Loadf X.rax);
    (* III-B: packed reload vs rebuilding from four parsed slots *)
    credit st Ledger.Reduction ~ops:0
      ~insns:(restore_cost ~reduction:false - restore_cost ~reduction:true)
  end
  else begin
    (* Rebuild from the parsed slots (the expensive direction of the
       one-to-many state). *)
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op Envspec.cc_n });
    emit st ~tag:X.Tag_sync (X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_imm 1 });
    emit st ~tag:X.Tag_sync
      (X.Alu { op = X.Or; dst = X.Reg X.rax; src = env_op Envspec.cc_z });
    emit st ~tag:X.Tag_sync (X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_imm 1 });
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = X.Reg X.rdx; src = env_op Envspec.cc_c });
    emit st ~tag:X.Tag_sync
      (X.Alu { op = X.Xor; dst = X.Reg X.rdx; src = X.Imm 1 });
    emit st ~tag:X.Tag_sync
      (X.Alu { op = X.Or; dst = X.Reg X.rax; src = X.Reg X.rdx });
    emit st ~tag:X.Tag_sync (X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_imm 1 });
    emit st ~tag:X.Tag_sync
      (X.Alu { op = X.Or; dst = X.Reg X.rax; src = env_op Envspec.cc_v });
    emit st ~tag:X.Tag_sync
      (X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_imm 28 });
    emit st ~tag:X.Tag_sync (X.Loadf X.rax)
  end;
  st.fl <- F_both Flagconv.Canonical

(* Make sure EFLAGS holds the guest flags; returns the convention.
   Without III-C-1, a restore is emitted even when EFLAGS already has
   them (the naive per-conditional Sync-restore of Fig. 9). *)
let ensure_flags st =
  match st.fl with
  | F_env ->
    flags_restore st;
    Flagconv.Canonical
  | F_both conv ->
    if st.opt.Opt.elim_restores then begin
      (* III-C.1: EFLAGS already holds the guest flags — the naive
         design would re-restore here anyway *)
      credit st Ledger.Elim_restores ~ops:1
        ~insns:(restore_cost ~reduction:st.opt.Opt.reduction);
      conv
    end
    else begin
      flags_restore st;
      Flagconv.Canonical
    end
  | F_dirty conv -> conv

(* Flip/install the carry polarity an adc/sbb template needs. *)
let ensure_carry st pol =
  let conv = ensure_flags st in
  let inverted = Flagconv.carry_inverted conv in
  let want_inverted = pol = `Inverted in
  if inverted <> want_inverted then begin
    emit st ~tag:X.Tag_sync (X.Savef X.rax);
    emit st ~tag:X.Tag_sync
      (X.Alu { op = X.Xor; dst = X.Reg X.rax; src = X.Imm canonical_bit });
    emit st ~tag:X.Tag_sync (X.Loadf X.rax);
    let conv' = if want_inverted then Flagconv.Canonical else Flagconv.Add_like in
    (match st.fl with
    | F_dirty _ -> st.fl <- F_dirty conv'
    | F_both _ -> st.fl <- F_both conv'
    | F_env -> assert false)
  end

(* Spill flags if env is stale (owed before any QEMU involvement and
   before EFLAGS-clobbering templates). *)
let spill_flags_if_dirty st =
  match st.fl with
  | F_dirty conv -> flags_save st conv
  | F_both conv ->
    (* Naive mode re-saves redundantly at every coordination point
       (the consecutive-memory pairs of Fig. 10). *)
    if not st.opt.Opt.elim_mem then flags_save st conv
    else
      credit st Ledger.Elim_mem ~ops:1
        ~insns:(save_cost ~reduction:st.opt.Opt.reduction conv)
  | F_env -> ()

(* Full Sync-save before a helper call or TB exit. *)
let sync_for_qemu st =
  spill_flags_if_dirty st;
  store_dirty_regs st

let invalidate_after_helper st =
  st.loaded <- 0;
  st.dirty <- 0;
  st.fl <- F_env

(* Without III-C-2 the naive design re-restores eagerly after every
   helper return (Sync-restore of Fig. 6): flags back into EFLAGS and
   every pinned register used later in the TB reloaded. *)
let eager_restore_after_helper st ~from_index =
  let remaining_uses = ref 0 in
  let reads_flags_later = ref false in
  for k = from_index to Array.length st.insns - 1 do
    remaining_uses := !remaining_uses lor A.uses st.insns.(k);
    if A.reads_flags st.insns.(k) then reads_flags_later := true
  done;
  if not st.opt.Opt.elim_mem then begin
    ensure_loaded_mask st (!remaining_uses land Pinmap.pinned_mask);
    if !reads_flags_later then flags_restore st
  end
  else begin
    (* III-C.2: the eager post-helper restore the naive design would
       emit — register reloads for every later use plus the flag
       rebuild — stays lazy instead. *)
    let reloads =
      popcount (!remaining_uses land Pinmap.pinned_mask land lnot st.loaded)
    in
    credit st Ledger.Elim_mem
      ~ops:(if !reads_flags_later then 1 else 0)
      ~insns:
        (reloads
        +
        if !reads_flags_later then restore_cost ~reduction:st.opt.Opt.reduction
        else 0)
  end

(* ---------- interrupt check ---------- *)

(* TB-head (or scheduled) interrupt poll. When the TB can be entered
   with live flags in EFLAGS (inter-TB optimization), the check
   preserves them around the cmp and the stub spills them (Fig. 7's
   rare-path parse). *)
let emit_irq_check st ~guard_flags =
  st.irq_emitted <- true;
  emit st ~tag:X.Tag_irq_check (X.Count X.Cnt_irq_poll);
  if guard_flags then
    emit st ~tag:X.Tag_irq_check (X.Savef X.rcx);
  emit st ~tag:X.Tag_irq_check
    (X.Alu { op = X.Cmp; dst = env_op Envspec.irq_pending; src = X.Imm 0 });
  emit st ~tag:X.Tag_irq_check (X.Jcc { cc = X.NE; target = st.irq_label });
  if guard_flags then
    emit st ~tag:X.Tag_irq_check (X.Loadf X.rcx)

let emit_irq_stub st =
  emit st (X.Label st.irq_label);
  (match st.entry_conv with
  | Some conv ->
    (* Flags arrived live in EFLAGS; the head check parked them in rcx.
       Spill them (canonicalized) so delivery sees the right CPSR. *)
    (match conv with
    | Flagconv.Sub_like | Flagconv.Canonical -> ()
    | Flagconv.Add_like ->
      emit st ~tag:X.Tag_sync
        (X.Alu { op = X.Xor; dst = X.Reg X.rcx; src = X.Imm canonical_bit })
    | Flagconv.Logic_like ->
      emit st ~tag:X.Tag_sync
        (X.Alu { op = X.And; dst = X.Reg X.rcx; src = X.Imm 0xC000_0000 });
      emit st ~tag:X.Tag_sync
        (X.Alu { op = X.Or; dst = X.Reg X.rcx; src = X.Imm canonical_bit }));
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = env_op Envspec.ccr_packed; src = X.Reg X.rcx });
    emit st ~tag:X.Tag_sync
      (X.Mov { width = X.W32; dst = env_op Envspec.ccr_tag; src = X.Imm 1 })
  | None -> ());
  emit st ~tag:X.Tag_irq_check
    (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm st.irq_resume_pc });
  emit st ~tag:X.Tag_irq_check (X.Exit { slot = Tb.slot_irq })

(* ---------- exits ---------- *)

let alloc_slot st kind =
  (* Dedupe direct targets; share one indirect slot. *)
  let rec find i =
    if i >= st.slots_used then None
    else if st.exits.(i) = kind then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some s -> s
  | None ->
    (* [Tb.slot_irq] stays reserved for the head interrupt check; region
       emission (whose slot budget extends past it) allocates around it. *)
    let s = if st.slots_used = Tb.slot_irq then Tb.slot_irq + 1 else st.slots_used in
    if s >= st.max_slots then raise Tb.Tb_too_complex;
    st.exits.(s) <- kind;
    st.slots_used <- s + 1;
    s

(* Epilogue + Exit. Record the exit-time flag situation for the
   inter-TB optimization; honour an elision decision for this slot. *)
let epilogue_exit st kind =
  let slot = alloc_slot st kind in
  let conv_now = match st.fl with F_env -> None | F_both c | F_dirty c -> Some c in
  let saved =
    match st.fl with
    | F_dirty conv ->
      if st.elide.(slot) then begin
        (* III-C.3: the chained successor redefines flags before use *)
        credit st Ledger.Inter_tb ~ops:1
          ~insns:(save_cost ~reduction:st.opt.Opt.reduction conv);
        false
      end
      else begin
        flags_save st conv;
        true
      end
    | F_both conv ->
      if (not st.opt.Opt.elim_mem) && not st.elide.(slot) then begin
        flags_save st conv;
        true
      end
      else begin
        (* skipped: III-C.2 if that pass is on (the save would be
           redundant regardless of linking), III-C.3 otherwise *)
        (if st.opt.Opt.elim_mem then
           credit st Ledger.Elim_mem ~ops:1
             ~insns:(save_cost ~reduction:st.opt.Opt.reduction conv)
         else
           credit st Ledger.Inter_tb ~ops:1
             ~insns:(save_cost ~reduction:st.opt.Opt.reduction conv));
        false
      end
    | F_env -> false
  in
  store_dirty_regs st;
  (match kind with
  | Tb.Direct target ->
    emit st ~tag:X.Tag_glue
      (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm target })
  | Tb.Indirect | Tb.Irq_deliver -> ());
  emit st ~tag:X.Tag_glue (X.Exit { slot });
  let conv_after = match st.fl with F_env -> None | F_both c | F_dirty c -> Some c in
  let record =
    { conv_at_exit = (if saved then conv_after else conv_now); flags_save_in_epilogue = saved }
  in
  (* Two textual exits can share one slot (deduped direct targets);
     inter-TB elision is only sound when both agree. *)
  if st.exit_seen.(slot) && st.exit_states.(slot) <> record then
    st.exit_states.(slot) <- { conv_at_exit = None; flags_save_in_epilogue = false }
  else st.exit_states.(slot) <- record;
  st.exit_seen.(slot) <- true

type snapshot = { s_loaded : int; s_dirty : int; s_fl : fl_state }

let save_state st = { s_loaded = st.loaded; s_dirty = st.dirty; s_fl = st.fl }

let restore_state st s =
  st.loaded <- s.s_loaded;
  st.dirty <- s.s_dirty;
  st.fl <- s.s_fl

(* ---------- helper-based bodies ---------- *)

let emit_helper_call st id =
  emit st ~tag:X.Tag_glue (X.Call_helper { id });
  invalidate_after_helper st

let set_env_pc st pc =
  emit st ~tag:X.Tag_glue
    (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Imm pc })

(* QEMU fallback for one instruction (system-level / uncovered):
   coordinate, call the emulation helper, lazily restore after. *)
let emit_fallback_body st ~pc ~index =
  st.fallback <- st.fallback + 1;
  (* This guest insn retires through the emulation helper: re-stamp
     its already-emitted retirement counter with the helper tier.
     Patching the single retirement site is drift-proof where
     mirroring the callers' dispatch logic would not be. *)
  Prog.repatch_last_retire st.b (fun attr -> Attr.retier attr Attr.Helper);
  sync_for_qemu st;
  set_env_pc st pc;
  emit st ~tag:X.Tag_sync (X.Count X.Cnt_sync_op);
  emit_helper_call st Helpers.h_interp_one;
  eager_restore_after_helper st ~from_index:(index + 1)

(* ---------- memory bodies ---------- *)

let mmu_load_id (w : A.width) =
  match w with
  | A.Word -> Helpers.h_mmu_load_w
  | A.Byte -> Helpers.h_mmu_load_b
  | A.Half -> Helpers.h_mmu_load_h

let mmu_store_id (w : A.width) =
  match w with
  | A.Word -> Helpers.h_mmu_store_w
  | A.Byte -> Helpers.h_mmu_store_b
  | A.Half -> Helpers.h_mmu_store_h

(* Add a (possibly shifted-register) offset to [dst]. [read] fetches
   source registers — callers pick host-or-env or env-only reads. *)
let apply_offset st ~dst ~read (off : A.mem_offset) =
  match off with
  | A.Imm_off 0 -> ()
  | A.Imm_off n ->
    emit st ~tag:X.Tag_mmu
      (X.Alu { op = X.Add; dst = X.Reg dst; src = X.Imm (Word32.of_signed n) })
  | A.Reg_off { rm; kind; amount; subtract } ->
    read ~dst:X.rax rm;
    if amount <> 0 then begin
      let op =
        match kind with
        | A.LSL -> X.Shl
        | A.LSR -> X.Shr
        | A.ASR -> X.Sar
        | A.ROR -> X.Ror
      in
      emit st ~tag:X.Tag_mmu (X.Shift { op; dst = X.Reg X.rax; amount = X.Sh_imm amount })
    end;
    emit st ~tag:X.Tag_mmu
      (X.Alu
         { op = (if subtract then X.Sub else X.Add); dst = X.Reg dst; src = X.Reg X.rax })

(* Compute a guest effective address into the first argument register:
   base plus offset (or just the base for post-indexing). *)
let compute_address ?(base_only = false) st rn (off : A.mem_offset) =
  read_reg_to st ~dst:Helpers.arg0_reg rn;
  if not base_only then apply_offset st ~dst:Helpers.arg0_reg ~read:(read_reg_to st) off

(* Base-register writeback, emitted after the helper returned (so a
   data abort leaves the base unchanged, matching the architecture).
   Works entirely on env — host registers are post-call poison. *)
let emit_writeback st rn (off : A.mem_offset) =
  emit st ~tag:X.Tag_mmu
    (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op (Envspec.reg rn) });
  (match off with
  | A.Imm_off n ->
    if n <> 0 then
      emit st ~tag:X.Tag_mmu
        (X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm (Word32.of_signed n) })
  | A.Reg_off { rm; kind; amount; subtract } ->
    emit st ~tag:X.Tag_mmu
      (X.Mov { width = X.W32; dst = X.Reg X.rcx; src = env_op (Envspec.reg rm) });
    if amount <> 0 then begin
      let op =
        match kind with
        | A.LSL -> X.Shl
        | A.LSR -> X.Shr
        | A.ASR -> X.Sar
        | A.ROR -> X.Ror
      in
      emit st ~tag:X.Tag_mmu (X.Shift { op; dst = X.Reg X.rcx; amount = X.Sh_imm amount })
    end;
    emit st ~tag:X.Tag_mmu
      (X.Alu
         { op = (if subtract then X.Sub else X.Add); dst = X.Reg X.rax; src = X.Reg X.rcx }));
  emit st ~tag:X.Tag_mmu
    (X.Mov { width = X.W32; dst = env_op (Envspec.reg rn); src = X.Reg X.rax })

(* The address-setup instructions above run after sync, so they may
   only read pinned-host or env state — both valid. *)

let maybe_scheduled_irq_check st ~index =
  if st.irq_sched_index = index && not st.irq_emitted then begin
    (* State is synced (caller just ran sync_for_qemu): publish the
       resume PC of this instruction; the cmp clobbers EFLAGS, which
       the tracker accounts for. *)
    st.irq_resume_pc <- pc_at st index;
    emit_irq_check st ~guard_flags:false;
    match st.fl with
    | F_both _ -> st.fl <- F_env
    | F_env -> ()
    | F_dirty _ -> assert false (* sync ran just before *)
  end

(* Extension (Opt.inline_mmu, the paper's future work): an inline TLB
   fast path for offset-form ldr/str in rule-translated code. The
   probe uses only the scratch registers (rax/rcx and the address in
   rdx), clobbers EFLAGS (flags are spilled first) and, on a miss,
   falls into a slow path that performs the full coordination the
   helper requires and reloads every live pinned register before
   rejoining — so the fast path keeps all pinned state live. *)
let emit_mem_inline st ~pc ~index (insn : A.t) =
  let width, rd, rn, off, is_load =
    match insn.A.op with
    | A.Ldr { width; rd; rn; off; index = A.Offset } -> (width, rd, rn, off, true)
    | A.Str { width; rd; rn; off; index = A.Offset } -> (width, rd, rn, off, false)
    | _ -> assert false
  in
  ensure_loaded_mask st ((A.uses insn lor A.defs insn) land Pinmap.pinned_mask);
  spill_flags_if_dirty st;
  ignore index;
  emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
  compute_address st rn off;  (* address in rdx; uses rax as scratch *)
  let t = X.Tag_mmu in
  let addr = Helpers.arg0_reg in
  let bank_disp =
    4 * Repro_mmu.Mmu.Tlb.bank_offset_words ~privileged:st.privileged
  in
  let slow = Prog.fresh_label st.b in
  let done_ = Prog.fresh_label st.b in
  (* set index in rax *)
  emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rax; src = X.Reg addr });
  emit st ~tag:t (X.Shift { op = X.Shr; dst = X.Reg X.rax; amount = X.Sh_imm 12 });
  emit st ~tag:t (X.Alu { op = X.And; dst = X.Reg X.rax; src = X.Imm 0xFF });
  emit st ~tag:t (X.Shift { op = X.Shl; dst = X.Reg X.rax; amount = X.Sh_imm 4 });
  (* tag compare *)
  emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rcx; src = X.Reg addr });
  emit st ~tag:t
    (X.Alu { op = X.And; dst = X.Reg X.rcx; src = X.Imm Repro_mmu.Mmu.page_mask });
  emit st ~tag:t
    (X.Alu
       {
         op = X.Cmp;
         dst =
           X.Mem
             { X.seg = X.Tlb; base = Some X.rax; index = None; scale = 1;
               disp = bank_disp + (if is_load then 0 else 4) };
         src = X.Reg X.rcx;
       });
  emit st ~tag:t (X.Jcc { cc = X.NE; target = slow });
  (* hit: paddr = tlb.paddr | (addr & 0xFFF) *)
  emit st ~tag:t
    (X.Mov
       {
         width = X.W32;
         dst = X.Reg X.rcx;
         src =
           X.Mem
             { X.seg = X.Tlb; base = Some X.rax; index = None; scale = 1;
               disp = bank_disp + 8 };
       });
  emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rax; src = X.Reg addr });
  emit st ~tag:t (X.Alu { op = X.And; dst = X.Reg X.rax; src = X.Imm 0xFFF });
  emit st ~tag:t (X.Alu { op = X.Add; dst = X.Reg X.rcx; src = X.Reg X.rax });
  let ram = X.Mem { X.seg = X.Ram; base = Some X.rcx; index = None; scale = 1; disp = 0 } in
  (if is_load then
     match width with
     | A.Word ->
       if Pinmap.is_pinned rd then
         emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg (host_of rd); src = ram })
       else begin
         emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg X.rax; src = ram });
         emit st ~tag:t
           (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax })
       end
     | A.Byte ->
       if Pinmap.is_pinned rd then emit st ~tag:t (X.Movzx8 { dst = host_of rd; src = ram })
       else begin
         emit st ~tag:t (X.Movzx8 { dst = X.rax; src = ram });
         emit st ~tag:t
           (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax })
       end
     | A.Half ->
       if Pinmap.is_pinned rd then
         emit st ~tag:t (X.Movzx16 { dst = host_of rd; src = ram })
       else begin
         emit st ~tag:t (X.Movzx16 { dst = X.rax; src = ram });
         emit st ~tag:t
           (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax })
       end
   else begin
     (* store: value from its pinned home or env via rax *)
     let src_op =
       if Pinmap.is_pinned rd && st.loaded land (1 lsl rd) <> 0 then X.Reg (host_of rd)
       else begin
         emit st ~tag:t
           (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op (Envspec.reg rd) });
         X.Reg X.rax
       end
     in
     match width with
     | A.Word -> emit st ~tag:t (X.Mov { width = X.W32; dst = ram; src = src_op })
     | A.Byte -> emit st ~tag:t (X.Mov { width = X.W8; dst = ram; src = src_op })
     | A.Half -> emit st ~tag:t (X.Mov { width = X.W16; dst = ram; src = src_op })
   end);
  emit st ~tag:t (X.Jmp done_);
  (* slow path: full coordination, helper, reload of live state *)
  emit st (X.Label slow);
  let dirty_snapshot = st.dirty in
  for r = 0 to 14 do
    if dirty_snapshot land (1 lsl r) <> 0 then
      emit st ~tag:X.Tag_sync
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg r); src = X.Reg (host_of r) })
  done;
  set_env_pc st pc;
  (if not is_load then
     let src_op =
       if Pinmap.is_pinned rd then X.Reg (host_of rd)
       else begin
         emit st ~tag:t
           (X.Mov
              { width = X.W32; dst = X.Reg Helpers.arg1_reg; src = env_op (Envspec.reg rd) });
         X.Reg Helpers.arg1_reg
       end
     in
     match src_op with
     | X.Reg r when r <> Helpers.arg1_reg ->
       emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg Helpers.arg1_reg; src = X.Reg r })
     | _ -> ());
  emit st ~tag:t
    (X.Call_helper { id = (if is_load then mmu_load_id width else mmu_store_id width) });
  (if is_load then
     if Pinmap.is_pinned rd then
       emit st ~tag:t (X.Mov { width = X.W32; dst = X.Reg (host_of rd); src = X.Reg X.rax })
     else
       emit st ~tag:t
         (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax }));
  (* reload everything the fast path kept live *)
  for r = 0 to 14 do
    if st.loaded land (1 lsl r) <> 0 && not (is_load && r = rd) then
      emit st ~tag:X.Tag_sync
        (X.Mov { width = X.W32; dst = X.Reg (host_of r); src = env_op (Envspec.reg r) })
  done;
  emit st (X.Label done_);
  (* join: fast-path state (slow path reconstructed it) *)
  if Pinmap.is_pinned rd && is_load then mark_def st rd;
  (match st.fl with F_both _ | F_dirty _ -> st.fl <- F_env | F_env -> ())

(* Offset-form ldr/str through the QEMU softMMU helper, with
   coordination (the paper: the learning-based approach context
   switches to QEMU for address translation). *)
let rec emit_mem_body st ~pc ~index (insn : A.t) =
  match insn.A.op with
  | (A.Ldr { index = A.Offset; rd; _ } | A.Str { index = A.Offset; rd; _ })
    when st.opt.Opt.inline_mmu && rd <> 15 ->
    emit_mem_inline st ~pc ~index insn
  | _ -> emit_mem_helper st ~pc ~index insn

and emit_mem_helper st ~pc ~index (insn : A.t) =
  match insn.A.op with
  | A.Ldr { width; rd; rn; off; index = idx_mode }
    when not (idx_mode <> A.Offset && rd = rn) ->
    sync_for_qemu st;
    maybe_scheduled_irq_check st ~index;
    emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
    compute_address ~base_only:(idx_mode = A.Post_indexed) st rn off;
    set_env_pc st pc;
    emit st ~tag:X.Tag_mmu (X.Call_helper { id = mmu_load_id width });
    invalidate_after_helper st;
    (* result first (rax), then the writeback (which clobbers rax);
       rd ≠ rn is guaranteed for indexed forms by the guard above *)
    if Pinmap.is_pinned rd then begin
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = X.Reg (host_of rd); src = X.Reg X.rax });
      mark_def st rd
    end
    else
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax });
    (match idx_mode with
    | A.Offset -> ()
    | A.Pre_indexed | A.Post_indexed -> emit_writeback st rn off);
    eager_restore_after_helper st ~from_index:(index + 1)
  | A.Ldrs { half; rd; rn; off; index = idx_mode }
    when not (idx_mode <> A.Offset && rd = rn) ->
    sync_for_qemu st;
    maybe_scheduled_irq_check st ~index;
    emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
    compute_address ~base_only:(idx_mode = A.Post_indexed) st rn off;
    set_env_pc st pc;
    emit st ~tag:X.Tag_mmu
      (X.Call_helper
         { id = (if half then Helpers.h_mmu_load_h else Helpers.h_mmu_load_b) });
    invalidate_after_helper st;
    (* the helper zero-extends; sign-extend host-side (movsx leaves
       EFLAGS alone, so no flag bookkeeping is owed) *)
    let sx dst =
      emit st ~tag:X.Tag_mmu
        (if half then X.Movsx16 { dst; src = X.Reg X.rax }
         else X.Movsx8 { dst; src = X.Reg X.rax })
    in
    if Pinmap.is_pinned rd then begin
      sx (host_of rd);
      mark_def st rd
    end
    else begin
      sx X.rax;
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg rd); src = X.Reg X.rax })
    end;
    (match idx_mode with
    | A.Offset -> ()
    | A.Pre_indexed | A.Post_indexed -> emit_writeback st rn off);
    eager_restore_after_helper st ~from_index:(index + 1)
  | A.Str { width; rd; rn; off; index = idx_mode } ->
    sync_for_qemu st;
    maybe_scheduled_irq_check st ~index;
    emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
    compute_address ~base_only:(idx_mode = A.Post_indexed) st rn off;
    read_reg_to st ~dst:Helpers.arg1_reg rd;
    set_env_pc st pc;
    emit st ~tag:X.Tag_mmu (X.Call_helper { id = mmu_store_id width });
    invalidate_after_helper st;
    (match idx_mode with
    | A.Offset -> ()
    | A.Pre_indexed | A.Post_indexed -> emit_writeback st rn off);
    eager_restore_after_helper st ~from_index:(index + 1)
  | A.Ldm { kind; rn; writeback; regs } when regs land (1 lsl rn) = 0 ->
    sync_for_qemu st;
    maybe_scheduled_irq_check st ~index;
    set_env_pc st pc;
    let count = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then incr count
    done;
    let start = match kind with A.IA -> 0 | A.DB -> -4 * !count in
    let k = ref 0 in
    let first = ref true in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then begin
        if not !first then invalidate_after_helper st;
        first := false;
        emit st ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg0_reg; src = env_op (Envspec.reg rn) });
        let off = start + (4 * !k) in
        if off <> 0 then
          emit st ~tag:X.Tag_mmu
            (X.Alu
               { op = X.Add; dst = X.Reg Helpers.arg0_reg; src = X.Imm (Word32.of_signed off) });
        emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
        emit st ~tag:X.Tag_mmu (X.Call_helper { id = Helpers.h_mmu_load_w });
        emit st ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = env_op (Envspec.reg r); src = X.Reg X.rax });
        incr k
      end
    done;
    invalidate_after_helper st;
    if writeback then begin
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op (Envspec.reg rn) });
      let delta = 4 * !count * (match kind with A.IA -> 1 | A.DB -> -1) in
      emit st ~tag:X.Tag_mmu
        (X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm (Word32.of_signed delta) });
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg rn); src = X.Reg X.rax })
    end;
    eager_restore_after_helper st ~from_index:(index + 1)
  | A.Stm { kind; rn; writeback; regs } ->
    sync_for_qemu st;
    maybe_scheduled_irq_check st ~index;
    set_env_pc st pc;
    let count = ref 0 in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then incr count
    done;
    let start = match kind with A.IA -> 0 | A.DB -> -4 * !count in
    let k = ref 0 in
    let first = ref true in
    for r = 0 to 15 do
      if regs land (1 lsl r) <> 0 then begin
        if not !first then invalidate_after_helper st;
        first := false;
        emit st ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg0_reg; src = env_op (Envspec.reg rn) });
        let off = start + (4 * !k) in
        if off <> 0 then
          emit st ~tag:X.Tag_mmu
            (X.Alu
               { op = X.Add; dst = X.Reg Helpers.arg0_reg; src = X.Imm (Word32.of_signed off) });
        emit st ~tag:X.Tag_mmu
          (X.Mov { width = X.W32; dst = X.Reg Helpers.arg1_reg; src = env_op (Envspec.reg r) });
        emit st ~tag:X.Tag_mmu (X.Count X.Cnt_mmu_access);
        emit st ~tag:X.Tag_mmu (X.Call_helper { id = Helpers.h_mmu_store_w });
        incr k
      end
    done;
    invalidate_after_helper st;
    if writeback then begin
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = X.Reg X.rax; src = env_op (Envspec.reg rn) });
      let delta = 4 * !count * (match kind with A.IA -> 1 | A.DB -> -1) in
      emit st ~tag:X.Tag_mmu
        (X.Alu { op = X.Add; dst = X.Reg X.rax; src = X.Imm (Word32.of_signed delta) });
      emit st ~tag:X.Tag_mmu
        (X.Mov { width = X.W32; dst = env_op (Envspec.reg rn); src = X.Reg X.rax })
    end;
    eager_restore_after_helper st ~from_index:(index + 1)
  | _ ->
    (* Pre/post-indexed forms and ldm-with-base-in-list fall back. *)
    emit_fallback_body st ~pc ~index

(* ---------- rule bodies ---------- *)

let emit_rule_body st (rule : Rule.t) binding insns_matched =
  let cov_before = Prog.length st.b in
  st.rule_covered <- st.rule_covered + List.length insns_matched;
  (let dmask = List.fold_left (fun m i -> m lor A.defs i) 0 insns_matched in
   st.rules_used <-
     (match List.assq_opt rule st.rules_used with
     | Some m0 -> (rule, m0 lor dmask) :: List.remove_assq rule st.rules_used
     | None -> (rule, dmask) :: st.rules_used));
  (* operand/def preloading happened at the caller (before any guard).
     Old flags need spilling only when the template clobbers EFLAGS
     without redefining the guest flags (otherwise they are dead). *)
  if rule.Rule.flags.Rule.host_clobbers && not rule.Rule.flags.Rule.guest_writes then
    spill_flags_if_dirty st;
  (match rule.Rule.carry_in with Some pol -> ensure_carry st pol | None -> ());
  (match
     Rule.instantiate rule binding ~pin_of_guest_reg:Pinmap.pin ~scratch:Pinmap.scratch
   with
  | Some host_insns -> List.iter (fun i -> emit st ~tag:X.Tag_compute i) host_insns
  | None -> assert false (* pinning was pre-checked *));
  List.iter (fun (i : A.t) ->
    let d = A.defs i in
    for r = 0 to 14 do
      if d land (1 lsl r) <> 0 then mark_def st r
    done)
    insns_matched;
  if rule.Rule.flags.Rule.guest_writes then begin
    (* Coordination is trigger-driven even in the basic design
       (paper Fig. 6): the spill happens at the next QEMU crossing,
       not here. *)
    match Rule.convention_after rule binding with
    | Some conv -> st.fl <- F_dirty conv
    | None -> assert false
  end
  else if rule.Rule.flags.Rule.host_clobbers then begin
    match st.fl with
    | F_both _ | F_dirty _ -> st.fl <- F_env (* env was made valid above *)
    | F_env -> ()
  end;
  st.cov_sites <- (rule.Rule.id, Prog.length st.b - cov_before) :: st.cov_sites

(* ---------- categories ---------- *)

type category =
  | C_rule of Rule.t * Rule.binding * A.t list  (* matched insns *)
  | C_memory
  | C_ender
  | C_fallback

let is_ender (i : A.t) =
  A.is_branch i
  ||
  match i.A.op with
  | A.Svc _ | A.Udf _ | A.Cps _ | A.Mcr _ | A.Msr { write_control = true; _ } -> true
  | _ -> false

let categorize st idx =
  let insn = st.insns.(idx) in
  if is_ender insn then C_ender
  else if A.is_memory_access insn then C_memory
  else
    (* Rule lookup over the unconditional tail starting here. A
       multi-instruction rule only applies to a run of AL insns. *)
    let try_match insns_list =
      match Ruleset.match_at st.ruleset insns_list with
      | Some (rule, binding) ->
        let len = Rule.guest_pattern_length rule in
        let matched = List.filteri (fun i _ -> i < len) insns_list in
        let conds_ok =
          match matched with
          | [ _ ] -> true
          | _ -> List.for_all (fun (i : A.t) -> i.A.cond = Cond.AL) matched
        in
        let all_pinned =
          Array.for_all (fun r -> r = -1 || Pinmap.is_pinned r) binding.Rule.regs
        in
        if conds_ok && all_pinned then Some (C_rule (rule, binding, matched)) else None
      | None -> None
    in
    let rest = Array.to_list (Array.sub st.insns idx (Array.length st.insns - idx)) in
    match try_match rest with
    | Some c -> c
    | None -> (
      (* A longer match may have failed its condition/pinning checks;
         retry restricted to a single instruction. *)
      match rest with
      | first :: _ :: _ -> (
        match try_match [ first ] with Some c -> c | None -> C_fallback)
      | _ -> C_fallback)

(* ---------- conditional guards ---------- *)

type guard = G_none | G_never | G_skip of int * snapshot

(* Open a guard for condition [cond]; the caller must later close it
   with [close_guard]. Register state needed inside the body must be
   preloaded by the caller BEFORE calling this. *)
let open_guard st (cond : Cond.t) =
  if cond = Cond.AL then G_none
  else begin
    let conv = ensure_flags st in
    match Flagconv.eval conv cond with
    | Flagconv.Always -> G_none
    | Flagconv.Never -> G_never
    | Flagconv.Needs_materialize ->
      (* No single host cc under this convention: canonicalize. *)
      emit st ~tag:X.Tag_sync (X.Savef X.rax);
      emit st ~tag:X.Tag_sync
        (X.Alu { op = X.Xor; dst = X.Reg X.rax; src = X.Imm canonical_bit });
      emit st ~tag:X.Tag_sync (X.Loadf X.rax);
      (match st.fl with
      | F_dirty _ -> st.fl <- F_dirty Flagconv.Canonical
      | F_both _ -> st.fl <- F_both Flagconv.Canonical
      | F_env -> assert false);
      let cc =
        match Flagconv.eval Flagconv.Canonical cond with
        | Flagconv.Cc cc -> cc
        | _ -> assert false
      in
      let skip = Prog.fresh_label st.b in
      let snap = save_state st in
      emit st ~tag:X.Tag_compute (X.Jcc { cc = X.cc_negate cc; target = skip });
      G_skip (skip, snap)
    | Flagconv.Cc cc ->
      let skip = Prog.fresh_label st.b in
      let snap = save_state st in
      emit st ~tag:X.Tag_compute (X.Jcc { cc = X.cc_negate cc; target = skip });
      G_skip (skip, snap)
  end

(* Join after a guarded body: conservative meet of the taken state and
   the pre-guard snapshot. *)
let close_guard st = function
  | G_none | G_never -> ()
  | G_skip (skip, snap) ->
    emit st (X.Label skip);
    let taken_loaded = st.loaded and taken_dirty = st.dirty and taken_fl = st.fl in
    st.loaded <- taken_loaded land snap.s_loaded;
    st.dirty <- taken_dirty lor snap.s_dirty;
    (* dirty regs must be loaded on both paths: enforced by the
       caller's preloading of defs before open_guard. *)
    assert (st.dirty land lnot st.loaded = 0);
    st.fl <-
      (match (taken_fl, snap.s_fl) with
      | F_both a, F_both b when a = b -> F_both a
      | F_dirty a, F_dirty b when a = b -> F_dirty a
      | F_env, F_env -> F_env
      | _ -> F_env)
    (* The F_env fallback requires env validity on both paths; bodies
       that leave flags dirty on the taken path must save before the
       join (see emit_insn's conditional flag-writer handling). *)

(* ---------- one guest instruction ---------- *)

let pinned_defs_uses insns_matched =
  List.fold_left
    (fun acc (i : A.t) -> acc lor A.uses i lor A.defs i)
    0 insns_matched
  land Pinmap.pinned_mask

(* Emit a (possibly conditional) non-ender instruction at [idx];
   returns the number of guest insns consumed. *)
let emit_insn st idx =
  let insn = st.insns.(idx) in
  let pc = pc_at st idx in
  (* [categorize] is pure, so the attribution can be computed before
     the retirement counter is placed — the counter's position (before
     the body, so faulting instructions still retire) must not move. *)
  let cat = categorize st idx in
  (match cat with
  | C_ender -> ()
  | C_rule (rule, _, _) ->
    emit st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:(native_tier st) ~rule:rule.Rule.id insn)))
  | C_memory ->
    emit st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:(native_tier st) insn)))
  | C_fallback ->
    emit st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:Attr.Helper insn))));
  match cat with
  | C_ender -> assert false
  | C_rule (rule, binding, matched) ->
    ensure_loaded_mask st (pinned_defs_uses matched);
    (* Conditional bodies that touch EFLAGS must leave env valid
       before the guard: the body's own spill would only run on the
       taken path, leaving stale env flags on the skip path. *)
    let writes = rule.Rule.flags.Rule.guest_writes in
    if insn.A.cond <> Cond.AL && (writes || rule.Rule.flags.Rule.host_clobbers) then
      spill_flags_if_dirty st;
    let g = open_guard st insn.A.cond in
    let count_member i (m : A.t) =
      if i > 0 then
        emit st
          (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:(native_tier st) ~rule:rule.Rule.id m)))
    in
    (match g with
    | G_never -> List.iteri count_member matched
    | G_none | G_skip _ ->
      List.iteri count_member matched;
      emit_rule_body st rule binding matched;
      (match g with
      | G_skip _ when writes -> (
        match st.fl with
        | F_dirty conv -> flags_save st conv
        | F_both _ | F_env -> ())
      | _ -> ()));
    close_guard st g;
    List.length matched
  | C_memory ->
    let cond = insn.A.cond in
    if cond <> Cond.AL then begin
      (* env must be fully valid before the guard so the join is
         consistent whichever path ran. *)
      ensure_loaded_mask st ((A.uses insn lor A.defs insn) land Pinmap.pinned_mask);
      spill_flags_if_dirty st;
      store_dirty_regs st
    end;
    let g = open_guard st cond in
    (match g with
    | G_never -> ()
    | G_none | G_skip _ -> emit_mem_body st ~pc ~index:idx insn);
    (match g with
    | G_skip (_, _) ->
      (* Taken path ended with env authoritative; make the join state
         reflect that conservatively. *)
      close_guard st g
    | G_none | G_never -> close_guard st g);
    1
  | C_fallback ->
    let cond = insn.A.cond in
    if cond <> Cond.AL then begin
      ensure_loaded_mask st ((A.uses insn lor A.defs insn) land Pinmap.pinned_mask);
      spill_flags_if_dirty st;
      store_dirty_regs st
    end;
    let g = open_guard st cond in
    (match g with
    | G_never -> ()
    | G_none | G_skip _ -> emit_fallback_body st ~pc ~index:idx);
    close_guard st g;
    1

(* ---------- enders ---------- *)

let emit_ender st idx =
  let insn = st.insns.(idx) in
  let pc = pc_at st idx in
  let next_pc = Word32.add pc 4 in
  (* Native control transfers retire in the emitter's own tier; the
     emulated enders are helper-assisted. Paths that bail out to the
     interp helper mid-arm re-stamp via [emit_fallback_body]. *)
  let ender_tier =
    match insn.A.op with
    | A.B _ | A.Bx _ | A.Ldr { rd = 15; _ } | A.Ldm _ -> native_tier st
    | _ -> Attr.Helper
  in
  emit st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:ender_tier insn)));
  let dual_exit ~taken_branch ~emit_taken =
    (* cond branch shape: fallthrough exit, then the taken path. *)
    match insn.A.cond with
    | Cond.AL -> emit_taken ()
    | cond -> (
      let conv = ensure_flags st in
      match Flagconv.eval conv cond with
      | Flagconv.Always -> emit_taken ()
      | Flagconv.Never -> epilogue_exit st (Tb.Direct next_pc)
      | Flagconv.Needs_materialize ->
        emit st ~tag:X.Tag_sync (X.Savef X.rax);
        emit st ~tag:X.Tag_sync
          (X.Alu { op = X.Xor; dst = X.Reg X.rax; src = X.Imm canonical_bit });
        emit st ~tag:X.Tag_sync (X.Loadf X.rax);
        (match st.fl with
        | F_dirty _ -> st.fl <- F_dirty Flagconv.Canonical
        | F_both _ -> st.fl <- F_both Flagconv.Canonical
        | F_env -> assert false);
        let cc =
          match Flagconv.eval Flagconv.Canonical cond with
          | Flagconv.Cc cc -> cc
          | _ -> assert false
        in
        let taken = Prog.fresh_label st.b in
        let snap = save_state st in
        emit st ~tag:X.Tag_compute (X.Jcc { cc; target = taken });
        epilogue_exit st (Tb.Direct next_pc);
        restore_state st snap;
        emit st (X.Label taken);
        emit_taken ()
      | Flagconv.Cc cc ->
        let taken = Prog.fresh_label st.b in
        let snap = save_state st in
        emit st ~tag:X.Tag_compute (X.Jcc { cc; target = taken });
        epilogue_exit st (Tb.Direct next_pc);
        restore_state st snap;
        emit st (X.Label taken);
        emit_taken ());
    ignore taken_branch
  in
  match insn.A.op with
  | A.B { link; offset } ->
    let target = Word32.add pc (Word32.of_signed ((offset * 4) + 8)) in
    if link && insn.A.cond <> Cond.AL then ensure_loaded st 14;
    dual_exit ~taken_branch:target ~emit_taken:(fun () ->
        if link then begin
          ensure_loaded st 14;
          emit st ~tag:X.Tag_compute
            (X.Mov
               { width = X.W32; dst = X.Reg (host_of 14); src = X.Imm (Word32.add pc 4) });
          mark_def st 14
        end;
        epilogue_exit st (Tb.Direct target))
  | A.Bx rm ->
    if insn.A.cond <> Cond.AL then ensure_loaded_mask st ((1 lsl rm) land Pinmap.pinned_mask);
    dual_exit ~taken_branch:0 ~emit_taken:(fun () ->
        (* Compute target after the epilogue's stores so rax is free:
           sync first, then publish env.pc. *)
        spill_flags_if_dirty st;
        store_dirty_regs st;
        read_reg_to st ~dst:X.rax rm;
        emit st ~tag:X.Tag_glue
          (X.Alu { op = X.And; dst = X.Reg X.rax; src = X.Imm 0xFFFF_FFFC });
        emit st ~tag:X.Tag_glue
          (X.Mov { width = X.W32; dst = env_op Envspec.pc; src = X.Reg X.rax });
        epilogue_exit st Tb.Indirect)
  | A.Ldr { rd = 15; _ } | A.Ldm _ ->
    (* PC-loading memory op: memory body publishes env.pc slot 15. *)
    dual_exit ~taken_branch:0 ~emit_taken:(fun () ->
        emit_mem_body st ~pc ~index:idx insn;
        epilogue_exit st Tb.Indirect)
  | A.Dp { rd = 15; _ } ->
    dual_exit ~taken_branch:0 ~emit_taken:(fun () ->
        st.fallback <- st.fallback + 1;
        sync_for_qemu st;
        set_env_pc st pc;
        emit st ~tag:X.Tag_sync (X.Count X.Cnt_sync_op);
        emit_helper_call st Helpers.h_interp_one;
        epilogue_exit st Tb.Indirect)
  | A.Svc _ | A.Udf _ | A.Cps _ | A.Mcr _ | A.Msr _ | A.Str { rd = 15; _ } ->
    (* Emulate; svc/udf stop inside the helper, the others resume at
       the next instruction. Conditional forms need env fully valid
       before the guard so the join state is consistent. *)
    if insn.A.cond <> Cond.AL then begin
      ensure_loaded_mask st ((A.uses insn lor A.defs insn) land Pinmap.pinned_mask);
      spill_flags_if_dirty st;
      store_dirty_regs st
    end;
    let g = open_guard st insn.A.cond in
    (match g with
    | G_never -> ()
    | G_none | G_skip _ -> emit_fallback_body st ~pc ~index:idx);
    close_guard st g;
    epilogue_exit st (Tb.Direct next_pc)
  | _ ->
    (* Any other PC-writing oddity: emulate then indirect. *)
    dual_exit ~taken_branch:0 ~emit_taken:(fun () ->
        st.fallback <- st.fallback + 1;
        sync_for_qemu st;
        set_env_pc st pc;
        emit_helper_call st Helpers.h_interp_one;
        epilogue_exit st Tb.Indirect)

(* ---------- III-C-1: same-condition run grouping ---------- *)

(* A maximal run of >= 2 consecutive instructions with the same
   non-AL condition, none of which is an ender and at most the last
   of which writes flags, can share one Sync-restore and one guard. *)
let run_length st idx =
  if not st.opt.Opt.elim_restores then 1
  else
    let cond = st.insns.(idx).A.cond in
    if cond = Cond.AL then 1
    else begin
      let n = Array.length st.insns in
      let j = ref idx in
      let stop = ref false in
      while (not !stop) && !j < n do
        let i = st.insns.(!j) in
        if i.A.cond <> cond || is_ender i then stop := true
        else begin
          let writes = A.writes_flags i in
          incr j;
          if writes then stop := true
        end
      done;
      max 1 (!j - idx)
    end

let first_flag_is_def insns =
  let rec scan k =
    if k >= Array.length insns then false
    else
      let i = insns.(k) in
      if A.reads_flags i then false
      else if A.is_memory_access i || A.is_system_level i || is_ender i then false
      else if A.writes_flags i then true
      else scan (k + 1)
  in
  scan 0

(* ---------- entry point ---------- *)

let emit_run st idx len =
  (* Single guard over [idx, idx+len): preload everything the bodies
     touch, evaluate the condition once, then emit bodies as if
     unconditional. *)
  let members = Array.to_list (Array.sub st.insns idx len) in
  let mask = pinned_defs_uses members in
  ensure_loaded_mask st mask;
  spill_flags_if_dirty st;
  store_dirty_regs st;
  (* III-C.1 run grouping: [len] same-condition insns share one guard
     and one Sync-restore; the naive design evaluates each on its own
     (a restore + Jcc per extra member). *)
  credit st Ledger.Elim_restores ~ops:(len - 1)
    ~insns:((len - 1) * (restore_cost ~reduction:st.opt.Opt.reduction + 1));
  let g = open_guard st st.insns.(idx).A.cond in
  let consumed = ref 0 in
  (match g with
  | G_never ->
    List.iter
      (fun (m : A.t) ->
        emit st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:(native_tier st) m))))
      members;
    consumed := len
  | G_none | G_skip _ ->
    while !consumed < len do
      let k = idx + !consumed in
      let insn = { (st.insns.(k)) with A.cond = Cond.AL } in
      let saved = st.insns.(k) in
      st.insns.(k) <- insn;
      consumed := !consumed + emit_insn st k;
      st.insns.(k) <- saved
    done;
    (* Leave env flags valid at the join if the run's last member
       defined flags. *)
    (match g with
    | G_skip _ -> (
      match st.fl with
      | F_dirty conv -> flags_save st conv
      | F_both _ | F_env -> ())
    | _ -> ()));
  close_guard st g;
  !consumed

let find_irq_sched_index st =
  (* III-D-2: the check can move down to the first unconditional
     memory access if no ender/conditional/exception-prone insn comes
     before it. *)
  if (not st.opt.Opt.sched_irq) || st.opt.Opt.inline_mmu then -1
    (* with the inline fast path, dirty registers stay in host
       registers across memory accesses, so a mid-TB delivery point
       would observe stale env state: the check stays at the head *)
  else begin
    let n = Array.length st.insns in
    let prefix_intact k =
      (* resuming at insns[k]'s original PC must not re-execute or
         skip anything: the first k scheduled insns must be exactly
         the first k original ones. *)
      let ok = ref true in
      for j = 0 to k - 1 do
        if st.origins.(j) >= st.origins.(k) then ok := false
      done;
      !ok && st.origins.(k) = k
    in
    let rec scan k =
      if k >= n then -1
      else
        let i = st.insns.(k) in
        if is_ender i then -1
        else if A.is_memory_access i && i.A.cond = Cond.AL then
          (if not (prefix_intact k) then -1
           else
             match i.A.op with
             | A.Ldr { index = A.Offset; rd; _ } when rd <> 15 -> k
             | A.Str { index = A.Offset; _ } -> k
             | A.Ldm { rn; regs; _ } when regs land 0x8000 = 0 && regs land (1 lsl rn) = 0 -> k
             | A.Stm _ -> k
             | _ -> -1)
        else if A.is_system_level i then -1
        else if i.A.cond <> Cond.AL then -1
        else scan (k + 1)
    in
    scan 0
  end

let emit ~opt ~ruleset ~privileged ~tb_pc ~insns ?origins ?elide_flag_save ?entry_conv
    ?(sched_hoists = 0) () =
  let origins =
    match origins with Some o -> o | None -> Array.init (Array.length insns) (fun i -> i)
  in
  let b = Prog.builder () in
  let st =
    {
      b;
      opt;
      ruleset;
      privileged;
      tb_pc;
      insns;
      origins;
      loaded = 0;
      dirty = 0;
      fl = (match entry_conv with Some c -> F_dirty c | None -> F_env);
      exits = Array.make Tb.exit_slots Tb.Indirect;
      exit_states =
        Array.make Tb.exit_slots { conv_at_exit = None; flags_save_in_epilogue = false };
      slots_used = 0;
      exit_seen = Array.make Tb.exit_slots false;
      elide =
        (match elide_flag_save with
        | Some a -> a
        | None -> Array.make Tb.exit_slots false);
      entry_conv;
      max_slots = Tb.slot_irq;
      irq_label = -1 (* replaced below *);
      irq_resume_pc = tb_pc;
      irq_emitted = false;
      irq_sched_index = -1;
      rule_covered = 0;
      fallback = 0;
      rules_used = [];
      prov = Ledger.zero_prov ();
      in_region = false;
      cov_sites = [];
    }
  in
  let st = { st with irq_label = Prog.fresh_label b } in
  st.exits.(Tb.slot_irq) <- Tb.Irq_deliver;
  st.irq_sched_index <- find_irq_sched_index st;
  (* With an entry assumption the check must be at the head (the stub
     spills the inherited EFLAGS). *)
  if entry_conv <> None then st.irq_sched_index <- -1;
  (* III-C.3 costs at every entry: the head check must guard EFLAGS
     (Savef/Loadf pair) when flags can arrive live.  The engine-side
     install cost is charged dynamically by the translator. *)
  if entry_conv <> None then credit st Ledger.Inter_tb ~ops:0 ~insns:(-2);
  (* III-D.2 (modelled): a mid-TB check runs with state already
     synced, where a head check under live flags would need the same
     Savef/Loadf guard pair. *)
  if st.irq_sched_index >= 0 then credit st Ledger.Sched_irq ~ops:0 ~insns:2;
  (* III-D.1 (modelled): each hoist the scheduler applied turns a
     save/restore coordination pair around a helper into none. *)
  if sched_hoists > 0 then
    credit st Ledger.Sched_dbu ~ops:(2 * sched_hoists)
      ~insns:
        (sched_hoists
        * (save_cost ~reduction:opt.Opt.reduction Flagconv.Canonical
          + restore_cost ~reduction:opt.Opt.reduction));
  if st.irq_sched_index < 0 then emit_irq_check st ~guard_flags:(entry_conv <> None);
  (* Naive design: eager prologue Sync-restore (paper Fig. 1 Path 2) *)
  if not opt.Opt.elim_restores then begin
    let used = ref 0 in
    let reads_before_def = ref false in
    let seen_def = ref false in
    Array.iter
      (fun (i : A.t) ->
        used := !used lor A.uses i;
        if (not !seen_def) && A.reads_flags i then reads_before_def := true;
        if A.writes_flags i then seen_def := true)
      insns;
    ensure_loaded_mask st (!used land Pinmap.pinned_mask);
    if !reads_before_def && st.fl = F_env then flags_restore st
  end;
  let n = Array.length insns in
  let idx = ref 0 in
  let ended = ref false in
  while !idx < n && not !ended do
    if is_ender insns.(!idx) then begin
      emit_ender st !idx;
      ended := true
    end
    else begin
      let len = run_length st !idx in
      if len > 1 then idx := !idx + emit_run st !idx len
      else idx := !idx + emit_insn st !idx
    end
  done;
  if not !ended then epilogue_exit st (Tb.Direct (Word32.add tb_pc (4 * n)));
  assert st.irq_emitted;
  emit_irq_stub st;
  {
    prog = Prog.finalize b;
    exits = st.exits;
    exit_states = st.exit_states;
    first_flag_is_def = first_flag_is_def insns;
    rule_covered = st.rule_covered;
    fallback = st.fallback;
    rules_used = List.rev st.rules_used;
    prov = st.prov;
    cov_sites = List.rev st.cov_sites;
  }

(* [emit] now names the whole-TB entry point; [emitp] is the
   instruction-append helper for the region section below. *)
let emitp st ?tag i = Prog.emit st.b ?tag i

(* ---------- hot-region superblocks ----------

   A region fuses a hot chained trace of TBs into one emitted body.
   The III-B/C/D pipeline then runs across the whole trace: the
   abstract residency/flag state flows through chunk seams instead of
   being torn down at every TB boundary, so the per-boundary Sync pair
   (epilogue flag save + dirty-register spills + pc publish, successor
   prologue restore) and the per-TB head interrupt check disappear
   region-wide.  One interrupt check remains at the region head —
   acceptable latency because region length is capped. *)

(* Ledger credit for one removed chunk seam: what the boundary would
   have cost in separate TBs given the abstract state flowing across
   it — the epilogue flag save (if flags are dirty), the dirty-register
   spills, the pc-publish/Exit glue pair, and the successor's own head
   interrupt check (cmp + Jcc). *)
let seam_credit st =
  let save =
    match st.fl with
    | F_dirty conv -> save_cost ~reduction:st.opt.Opt.reduction conv
    | F_both _ | F_env -> 0
  in
  credit st Ledger.Region
    ~ops:(if save > 0 then 1 else 0)
    ~insns:(save + popcount st.dirty + 2 + 2)

(* Interior-chunk ender: the chunk ends in a (possibly conditional,
   possibly linking) B whose hot direction is the next chunk.  The hot
   direction falls through into the next chunk's body; the cold
   direction keeps a normal epilogue exit.  Anything that cannot fall
   through to [next_chunk_pc] raises — the caller treats the trace as
   unfusable. *)
let emit_seam_branch st idx ~next_chunk_pc =
  let insn = st.insns.(idx) in
  let pc = pc_at st idx in
  let next_pc = Word32.add pc 4 in
  emitp st (X.Count (X.Cnt_guest_insn (Attr.pack ~tier:Attr.Region insn)));
  match insn.A.op with
  | A.B { link; offset } ->
    let target = Word32.add pc (Word32.of_signed ((offset * 4) + 8)) in
    let follows_taken = next_chunk_pc = target in
    if (not follows_taken) && next_chunk_pc <> next_pc then raise Tb.Tb_too_complex;
    let emit_link () =
      if link then begin
        ensure_loaded st 14;
        emitp st ~tag:X.Tag_compute
          (X.Mov
             { width = X.W32; dst = X.Reg (host_of 14); src = X.Imm (Word32.add pc 4) });
        mark_def st 14
      end
    in
    (match insn.A.cond with
    | Cond.AL ->
      if not follows_taken then raise Tb.Tb_too_complex;
      emit_link ();
      seam_credit st
    | cond ->
      (* Both directions must agree on the loaded set (one keeps an
         epilogue exit): preload lr before the condition splits. *)
      if link then ensure_loaded st 14;
      let conv = ensure_flags st in
      let rec resolve conv =
        match Flagconv.eval conv cond with
        | Flagconv.Always ->
          if not follows_taken then raise Tb.Tb_too_complex;
          emit_link ();
          seam_credit st
        | Flagconv.Never ->
          if follows_taken then raise Tb.Tb_too_complex;
          seam_credit st
        | Flagconv.Needs_materialize ->
          emitp st ~tag:X.Tag_sync (X.Savef X.rax);
          emitp st ~tag:X.Tag_sync
            (X.Alu { op = X.Xor; dst = X.Reg X.rax; src = X.Imm canonical_bit });
          emitp st ~tag:X.Tag_sync (X.Loadf X.rax);
          (match st.fl with
          | F_dirty _ -> st.fl <- F_dirty Flagconv.Canonical
          | F_both _ -> st.fl <- F_both Flagconv.Canonical
          | F_env -> assert false);
          resolve Flagconv.Canonical
        | Flagconv.Cc cc ->
          let cont = Prog.fresh_label st.b in
          let snap = save_state st in
          if follows_taken then begin
            (* condition true -> fall into next chunk; false -> exit *)
            emitp st ~tag:X.Tag_compute (X.Jcc { cc; target = cont });
            epilogue_exit st (Tb.Direct next_pc);
            restore_state st snap;
            emitp st (X.Label cont);
            emit_link ();
            seam_credit st
          end
          else begin
            (* condition false -> fall into next chunk; true -> exit *)
            emitp st ~tag:X.Tag_compute (X.Jcc { cc = X.cc_negate cc; target = cont });
            emit_link ();
            epilogue_exit st (Tb.Direct target);
            restore_state st snap;
            emitp st (X.Label cont);
            seam_credit st
          end
      in
      resolve conv)
  | _ -> raise Tb.Tb_too_complex

let emit_region ~opt ~ruleset ~privileged ~chunks ?elide_flag_save ?entry_conv () =
  let n_chunks = Array.length chunks in
  assert (n_chunks >= 2);
  let head_pc, head_insns, head_origins, _ = chunks.(0) in
  let b = Prog.builder () in
  let st =
    {
      b;
      opt;
      ruleset;
      privileged;
      tb_pc = head_pc;
      insns = head_insns;
      origins = head_origins;
      loaded = 0;
      dirty = 0;
      fl = (match entry_conv with Some c -> F_dirty c | None -> F_env);
      exits = Array.make Tb.region_exit_slots Tb.Indirect;
      exit_states =
        Array.make Tb.region_exit_slots
          { conv_at_exit = None; flags_save_in_epilogue = false };
      slots_used = 0;
      exit_seen = Array.make Tb.region_exit_slots false;
      elide =
        (match elide_flag_save with
        | Some a -> a
        | None -> Array.make Tb.region_exit_slots false);
      entry_conv;
      max_slots = Tb.region_exit_slots;
      irq_label = -1 (* replaced below *);
      irq_resume_pc = head_pc;
      irq_emitted = false;
      irq_sched_index = -1;
      (* one head check for the whole region: never scheduled mid-body *)
      rule_covered = 0;
      fallback = 0;
      rules_used = [];
      prov = Ledger.zero_prov ();
      in_region = true;
      cov_sites = [];
    }
  in
  let st = { st with irq_label = Prog.fresh_label b } in
  st.exits.(Tb.slot_irq) <- Tb.Irq_deliver;
  if entry_conv <> None then credit st Ledger.Inter_tb ~ops:0 ~insns:(-2);
  emit_irq_check st ~guard_flags:(entry_conv <> None);
  Array.iteri
    (fun ci (pc, insns, origins, hoists) ->
      st.tb_pc <- pc;
      st.insns <- insns;
      st.origins <- origins;
      if hoists > 0 then
        credit st Ledger.Sched_dbu ~ops:(2 * hoists)
          ~insns:
            (hoists
            * (save_cost ~reduction:opt.Opt.reduction Flagconv.Canonical
              + restore_cost ~reduction:opt.Opt.reduction));
      let last = ci = n_chunks - 1 in
      let n = Array.length insns in
      let idx = ref 0 in
      let ended = ref false in
      while !idx < n && not !ended do
        if is_ender insns.(!idx) then begin
          if last then emit_ender st !idx
          else begin
            let next_chunk_pc, _, _, _ = chunks.(ci + 1) in
            emit_seam_branch st !idx ~next_chunk_pc
          end;
          ended := true
        end
        else begin
          let len = run_length st !idx in
          if len > 1 then idx := !idx + emit_run st !idx len
          else idx := !idx + emit_insn st !idx
        end
      done;
      if not !ended then begin
        let fall = Word32.add pc (4 * n) in
        if last then epilogue_exit st (Tb.Direct fall)
        else begin
          let next_chunk_pc, _, _, _ = chunks.(ci + 1) in
          if next_chunk_pc <> fall then raise Tb.Tb_too_complex;
          seam_credit st
        end
      end)
    chunks;
  assert st.irq_emitted;
  emit_irq_stub st;
  {
    prog = Prog.finalize b;
    exits = st.exits;
    exit_states = st.exit_states;
    first_flag_is_def = first_flag_is_def head_insns;
    rule_covered = st.rule_covered;
    fallback = st.fallback;
    rules_used = List.rev st.rules_used;
    prov = st.prov;
    cov_sites = List.rev st.cov_sites;
  }
