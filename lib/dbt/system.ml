module Runtime = Repro_tcg.Runtime
module Engine = Repro_tcg.Engine
module Tb = Repro_tcg.Tb
module Helpers = Repro_tcg.Helpers
module Devices = Repro_machine.Devices
module Bus = Repro_machine.Bus
module Cpu = Repro_arm.Cpu
module Stats = Repro_x86.Stats
module Tlb = Repro_mmu.Mmu.Tlb
module Fi = Repro_faultinject.Faultinject
module Ruleset = Repro_rules.Ruleset
module Flagconv = Repro_rules.Flagconv
module Snapshot = Repro_snapshot.Snapshot
module Journal = Repro_snapshot.Journal
module Depot = Repro_aotcache.Depot
module Trace = Repro_observe.Trace
module Scope = Repro_perfscope.Scope

type mode = Qemu | Rules of Opt.t

let mode_name = function
  | Qemu -> "qemu"
  | Rules o -> "rules:" ^ Opt.name o

let mode_of_name s =
  if s = "qemu" then Some Qemu
  else if String.length s > 6 && String.sub s 0 6 = "rules:" then begin
    let n = String.sub s 6 (String.length s - 6) in
    match List.find_opt (fun (_, o) -> Opt.name o = n) Opt.levels with
    | Some (_, o) -> Some (Rules o)
    | None ->
      if Opt.name Opt.future = n then Some (Rules Opt.future)
      else if Opt.name Opt.with_regions = n then Some (Rules Opt.with_regions)
      else None
  end
  else None

(* The degradation ladder: which engine tier a run starts on. The
   watchdog (or the external supervision layer) only ever moves a
   machine down the ladder; the floor is sticky across runs and rides
   in snapshots so a restored machine never silently re-trusts an
   engine tier it already demoted. *)
type rung = Rung_rules | Rung_baseline | Rung_interp

let rung_name = function
  | Rung_rules -> "rules"
  | Rung_baseline -> "baseline"
  | Rung_interp -> "interpreter"

let rung_level = function Rung_rules -> 0 | Rung_baseline -> 1 | Rung_interp -> 2

let rung_of_level = function
  | 0 -> Rung_rules
  | 1 -> Rung_baseline
  | 2 -> Rung_interp
  | n -> raise (Snapshot.Corrupt (Printf.sprintf "degrade: bad rung %d" n))

let lowest_rung a b = if rung_level a >= rung_level b then a else b

let degrade = function
  | Rung_rules -> Some Rung_baseline
  | Rung_baseline -> Some Rung_interp
  | Rung_interp -> None

type tb_record = {
  r_id : int;
  r_pc : int;
  r_priv : bool;
  r_mmu : bool;
  r_override : int option;
  r_injected : [ `None | `Rule_corrupt | `Livelock ];
  r_hot : int;
  r_meta : (bool array * Flagconv.t option) option;
}

type region_record = {
  rg_id : int;
  rg_hot : int;
  rg_members : int array;  (* plain record indices, trace order *)
  rg_meta : (bool array * Flagconv.t option) option;
}

(* Warm-boot bookkeeping for recipes loaded from a persistent depot.
   Indices 0..n-1 are plain records, n.. the superblock recipes (the
   same combined index space the chain graph uses). A recipe is
   [installed] once it has been replayed into the live cache for the
   current cache generation, [dead] once it can never install in this
   generation (quarantined, or its guest bytes never matched), and
   pending otherwise — pending recipes are retried in waves, each
   triggered by the first cache miss on one of them. *)
type depot_state = {
  dp_records : tb_record array;
  dp_links : int array array;
  dp_regions : region_record array;
  dp_region_links : int array array;
  dp_srcsum : int array;  (* per plain record, install fidelity guard *)
  dp_keys : (int * bool * bool, int) Hashtbl.t;
      (* (pc, privileged, mmu_on) -> plain record index *)
  dp_skip : bool array;  (* quarantined at install time; never replayed *)
  dp_installed : Tb.t option array;
  dp_dead : bool array;
  mutable dp_generation : int;
  mutable dp_installed_count : int;
  dp_pcs : (int, unit) Hashtbl.t;
      (* guest PCs served from the depot — poison attribution *)
  mutable dp_poisoned : int list;
      (* depot-served PCs whose TB shadow verification invalidated *)
}

type t = {
  mode : mode;
  rt : Runtime.t;
  cache : Tb.Cache.t;
  rule_translator : Translator_rule.t option;
  ruleset : Repro_rules.Ruleset.t option;
  mutable journal : Journal.t;
  mutable pending_resume : Engine.resume option;
  mutable last_checkpoint : Snapshot.t option;
  mutable stop_checkpoint : Snapshot.t option;
  mutable rung_floor : rung;
  mutable depot : depot_state option;
}

let create ?ram_kib ?ruleset ?tb_capacity ?inject ?shadow_depth
    ?quarantine_threshold ?trace ?ledger ?scope mode =
  let rt = Runtime.create ?ram_kib ?inject ?trace ?ledger ?scope () in
  Helpers.install rt;
  (* Observational wiring: devices and the injector share the
     runtime's event ring. *)
  Devices.Timer.set_trace rt.Runtime.bus.Repro_machine.Bus.timer trace;
  (match inject with Some inj -> Fi.set_trace inj trace | None -> ());
  let cache = Tb.Cache.create ?capacity:tb_capacity () in
  rt.Runtime.is_code_page <- Tb.Cache.is_code_page cache;
  let ruleset, rule_translator =
    match mode with
    | Qemu -> (None, None)
    | Rules opt ->
      let ruleset =
        match ruleset with Some r -> r | None -> Repro_rules.Builtin.ruleset ()
      in
      ( Some ruleset,
        Some
          (Translator_rule.create ~opt ~ruleset ?shadow_depth
             ?quarantine_threshold ?ledger ()) )
  in
  {
    mode;
    rt;
    cache;
    rule_translator;
    ruleset;
    journal = Journal.create ();
    pending_resume = None;
    last_checkpoint = None;
    stop_checkpoint = None;
    rung_floor = (match mode with Qemu -> Rung_baseline | Rules _ -> Rung_rules);
    depot = None;
  }

let natural_rung t =
  match t.mode with Qemu -> Rung_baseline | Rules _ -> Rung_rules

let rung_floor t = t.rung_floor

let set_rung_floor t rung = t.rung_floor <- lowest_rung t.rung_floor rung

let degrade_floor t =
  match degrade t.rung_floor with
  | Some next ->
    t.rung_floor <- next;
    true
  | None -> false

let load_image t origin words = Runtime.load_image t.rt origin words
let stats t = Runtime.stats t.rt

(* ---------- translation-quality observatory ---------- *)

let set_cov_static t s =
  match t.rule_translator with
  | Some tr -> Translator_rule.set_cov_static tr s
  | None -> ()

let cov_static t =
  match t.rule_translator with
  | Some tr -> Translator_rule.cov_static tr
  | None -> None

let coverage_rules t =
  match t.ruleset with
  | Some rs ->
    List.map
      (fun (r : Repro_rules.Rule.t) -> (r.Repro_rules.Rule.id, r.Repro_rules.Rule.name))
      (Ruleset.rules rs)
  | None -> []

let coverage_report t =
  Repro_covscope.Report.make ?static:(cov_static t) ~rules:(coverage_rules t)
    (Repro_covscope.Report.of_stats (Runtime.stats t.rt))
let cpu t = t.rt.Runtime.cpu
let journal t = t.journal
let uart_output t = Devices.Uart.output t.rt.Runtime.bus.Repro_machine.Bus.uart

let set_timer t ~period =
  let timer = t.rt.Runtime.bus.Repro_machine.Bus.timer in
  Devices.Timer.write timer 0x4 period;
  Devices.Timer.write timer 0x0 1

(* ---- snapshot encoding ---- *)

let int_of_injected = function `None -> 0 | `Rule_corrupt -> 1 | `Livelock -> 2

let injected_of_int = function
  | 0 -> `None
  | 1 -> `Rule_corrupt
  | 2 -> `Livelock
  | n -> raise (Snapshot.Corrupt (Printf.sprintf "cache: bad injection kind %d" n))

let int_of_conv = function
  | None -> 0
  | Some Flagconv.Add_like -> 1
  | Some Flagconv.Sub_like -> 2
  | Some Flagconv.Logic_like -> 3
  | Some Flagconv.Canonical -> 4

let conv_of_int = function
  | 0 -> None
  | 1 -> Some Flagconv.Add_like
  | 2 -> Some Flagconv.Sub_like
  | 3 -> Some Flagconv.Logic_like
  | 4 -> Some Flagconv.Canonical
  | n -> raise (Snapshot.Corrupt (Printf.sprintf "cache: bad flag convention %d" n))

(* One record per live plain TB, in translation (id) order; then the
   plain chain graph; then one recipe per installed superblock (its
   constituents as record indices); then the region chain graph. Link
   targets live in a combined index space: plain records are 0..n-1,
   regions n, n+1, ... in recipe order. The host code itself is not
   serialized: every translator input it depends on — guest memory,
   the SMC length override, the injected corruption, the accumulated
   link-time meta, the constituent traces — is recorded, so restore
   re-translates (and re-fuses) to bit-identical programs (live TBs
   always postdate the last quarantine/blacklist change because every
   health change flushes the cache). *)
let encode_cache t =
  let tbs =
    Tb.Cache.to_list t.cache
    |> List.sort (fun (a : Tb.t) (b : Tb.t) -> compare a.Tb.id b.Tb.id)
    |> Array.of_list
  in
  let regions =
    Tb.Cache.regions_list t.cache
    |> List.sort (fun (a : Tb.t) (b : Tb.t) -> compare a.Tb.id b.Tb.id)
    |> Array.of_list
  in
  let index_of_id = Hashtbl.create 64 in
  Array.iteri (fun i (tb : Tb.t) -> Hashtbl.replace index_of_id tb.Tb.id i) tbs;
  Array.iteri
    (fun i (tb : Tb.t) ->
      Hashtbl.replace index_of_id tb.Tb.id (Array.length tbs + i))
    regions;
  let b = Snapshot.Enc.create () in
  let enc_meta (tb : Tb.t) =
    match t.rule_translator with
    | None -> Snapshot.Enc.bool b false
    | Some tr -> (
      match Translator_rule.cache_meta tr tb with
      | None -> Snapshot.Enc.bool b false
      | Some (elide, conv) ->
        Snapshot.Enc.bool b true;
        Snapshot.Enc.int b (Array.length elide);
        Array.iter (Snapshot.Enc.bool b) elide;
        Snapshot.Enc.int b (int_of_conv conv))
  in
  let enc_links (tb : Tb.t) =
    Snapshot.Enc.int b (Array.length tb.Tb.links);
    Array.iter
      (fun succ ->
        Snapshot.Enc.int b
          (match succ with
          | None -> -1
          | Some (s : Tb.t) -> Hashtbl.find index_of_id s.Tb.id))
      tb.Tb.links
  in
  Snapshot.Enc.int b (Array.length tbs);
  Array.iter
    (fun (tb : Tb.t) ->
      Snapshot.Enc.int b tb.Tb.id;
      Snapshot.Enc.int b tb.Tb.guest_pc;
      Snapshot.Enc.bool b tb.Tb.privileged;
      Snapshot.Enc.bool b tb.Tb.mmu_on;
      Snapshot.Enc.int b
        (match tb.Tb.translated_override with None -> -1 | Some n -> n);
      Snapshot.Enc.int b (int_of_injected tb.Tb.injected);
      Snapshot.Enc.int b tb.Tb.hot;
      enc_meta tb)
    tbs;
  Array.iter enc_links tbs;
  Snapshot.Enc.int b (Array.length regions);
  Array.iter
    (fun (tb : Tb.t) ->
      Snapshot.Enc.int b tb.Tb.id;
      Snapshot.Enc.int b tb.Tb.hot;
      Snapshot.Enc.int b (Array.length tb.Tb.region_ids);
      Array.iter
        (fun cid ->
          match Hashtbl.find_opt index_of_id cid with
          | Some i when i < Array.length tbs -> Snapshot.Enc.int b i
          | _ ->
            raise
              (Snapshot.Corrupt
                 (Printf.sprintf
                    "cache: region %d references a dead constituent %d" tb.Tb.id
                    cid)))
        tb.Tb.region_ids;
      enc_meta tb)
    regions;
  Array.iter enc_links regions;
  Snapshot.Enc.contents b

let decode_cache payload =
  let d = Snapshot.Dec.of_string ~name:"cache" payload in
  let dec_meta () =
    if Snapshot.Dec.bool d then begin
      let len = Snapshot.Dec.int d in
      let elide = Array.init len (fun _ -> Snapshot.Dec.bool d) in
      let conv = conv_of_int (Snapshot.Dec.int d) in
      Some (elide, conv)
    end
    else None
  in
  let dec_links n =
    Array.init n (fun _ ->
        let slots = Snapshot.Dec.int d in
        Array.init slots (fun _ -> Snapshot.Dec.int d))
  in
  let n = Snapshot.Dec.int d in
  if n < 0 then raise (Snapshot.Corrupt "cache: negative record count");
  let records =
    Array.init n (fun _ ->
        let r_id = Snapshot.Dec.int d in
        let r_pc = Snapshot.Dec.int d in
        let r_priv = Snapshot.Dec.bool d in
        let r_mmu = Snapshot.Dec.bool d in
        let ov = Snapshot.Dec.int d in
        let r_override = if ov < 0 then None else Some ov in
        let r_injected = injected_of_int (Snapshot.Dec.int d) in
        let r_hot = Snapshot.Dec.int d in
        let r_meta = dec_meta () in
        { r_id; r_pc; r_priv; r_mmu; r_override; r_injected; r_hot; r_meta })
  in
  let links = dec_links n in
  let m = Snapshot.Dec.int d in
  if m < 0 then raise (Snapshot.Corrupt "cache: negative region count");
  let regions =
    Array.init m (fun _ ->
        let rg_id = Snapshot.Dec.int d in
        let rg_hot = Snapshot.Dec.int d in
        let members = Snapshot.Dec.int d in
        if members < 2 then
          raise (Snapshot.Corrupt "cache: region with fewer than two chunks");
        let rg_members =
          Array.init members (fun _ ->
              let i = Snapshot.Dec.int d in
              if i < 0 || i >= n then
                raise (Snapshot.Corrupt "cache: region member out of range");
              i)
        in
        let rg_meta = dec_meta () in
        { rg_id; rg_hot; rg_members; rg_meta })
  in
  let region_links = dec_links m in
  if not (Snapshot.Dec.finished d) then
    raise (Snapshot.Corrupt "cache: trailing bytes");
  (records, links, regions, region_links)

let encode_translator tr rs =
  let saved = Translator_rule.save_state tr in
  let strikes, quarantined = Ruleset.export_health rs in
  let b = Snapshot.Enc.create () in
  let ints l =
    Snapshot.Enc.int b (List.length l);
    List.iter (Snapshot.Enc.int b) l
  in
  let pairs l =
    Snapshot.Enc.int b (List.length l);
    List.iter
      (fun (x, y) ->
        Snapshot.Enc.int b x;
        Snapshot.Enc.int b y)
      l
  in
  ints saved.Translator_rule.s_blacklist;
  pairs saved.Translator_rule.s_shadow_done;
  pairs saved.Translator_rule.s_shadow_tries;
  Snapshot.Enc.int b saved.Translator_rule.s_rule_covered;
  Snapshot.Enc.int b saved.Translator_rule.s_fallback;
  Snapshot.Enc.int b saved.Translator_rule.s_inter_tb_elisions;
  pairs strikes;
  ints quarantined;
  Snapshot.Enc.contents b

let decode_translator payload =
  let d = Snapshot.Dec.of_string ~name:"translator" payload in
  let ints () = Array.to_list (Snapshot.Dec.int_array d) in
  let pairs () =
    let n = Snapshot.Dec.int d in
    List.init n (fun _ ->
        let x = Snapshot.Dec.int d in
        let y = Snapshot.Dec.int d in
        (x, y))
  in
  let s_blacklist = ints () in
  let s_shadow_done = pairs () in
  let s_shadow_tries = pairs () in
  let s_rule_covered = Snapshot.Dec.int d in
  let s_fallback = Snapshot.Dec.int d in
  let s_inter_tb_elisions = Snapshot.Dec.int d in
  let strikes = pairs () in
  let quarantined = ints () in
  if not (Snapshot.Dec.finished d) then
    raise (Snapshot.Corrupt "translator: trailing bytes");
  ( {
      Translator_rule.s_blacklist;
      s_shadow_done;
      s_shadow_tries;
      s_rule_covered;
      s_fallback;
      s_inter_tb_elisions;
    },
    strikes,
    quarantined )

let encode_resume (r : Engine.resume) =
  let b = Snapshot.Enc.create () in
  Snapshot.Enc.int b r.Engine.rpc;
  Snapshot.Enc.bool b r.Engine.rprivileged;
  Snapshot.Enc.bool b r.Engine.rmmu_on;
  Snapshot.Enc.bool b r.Engine.rneeds_enter;
  Snapshot.Enc.contents b

let decode_resume payload =
  let d = Snapshot.Dec.of_string ~name:"resume" payload in
  let rpc = Snapshot.Dec.int d in
  let rprivileged = Snapshot.Dec.bool d in
  let rmmu_on = Snapshot.Dec.bool d in
  let rneeds_enter = Snapshot.Dec.bool d in
  if not (Snapshot.Dec.finished d) then
    raise (Snapshot.Corrupt "resume: trailing bytes");
  { Engine.rpc; rprivileged; rmmu_on; rneeds_enter }

let capture ?resume t =
  (* The trace ring and the coordination ledger are deliberately NOT
     snapshot sections: they are observational accumulators over the
     whole process lifetime, and guest-visible state must round-trip
     bit-identically whether or not they are attached. *)
  (match t.rt.Runtime.trace with
  | Some tr -> Trace.emit tr Trace.Snapshot "capture"
  | None -> ());
  let snap = Snapshot.create () in
  Snapshot.add snap "mode" (mode_name t.mode);
  Snapshot.capture_machine t.rt snap;
  Snapshot.add snap "cache" (encode_cache t);
  let ctl = Snapshot.Enc.create () in
  Snapshot.Enc.int ctl (Tb.Cache.full_flushes t.cache);
  Snapshot.Enc.int ctl (Tb.Cache.ids t.cache);
  Snapshot.add snap "cachectl" (Snapshot.Enc.contents ctl);
  (match (t.rule_translator, t.ruleset) with
  | Some tr, Some rs -> Snapshot.add snap "translator" (encode_translator tr rs)
  | _ -> ());
  (match resume with
  | Some r -> Snapshot.add snap "resume" (encode_resume r)
  | None -> ());
  let dg = Snapshot.Enc.create () in
  Snapshot.Enc.int dg (rung_level t.rung_floor);
  Snapshot.add snap "degrade" (Snapshot.Enc.contents dg);
  Snapshot.add snap "journal" (Journal.to_string t.journal);
  snap

let snapshot t =
  match t.stop_checkpoint with Some s -> s | None -> capture t

(* ---- restore ---- *)

(* Demotion-state merge policy: health only ever ratchets down.
   Blacklists and quarantine sets take the union, per-rule strikes the
   maximum — shared by snapshot restore and depot install. *)
let union_int l1 l2 = List.sort_uniq compare (l1 @ l2)

let max_strikes a b =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, n) ->
      match Hashtbl.find_opt tbl id with
      | Some m when m >= n -> ()
      | _ -> Hashtbl.replace tbl id n)
    (a @ b);
  Hashtbl.fold (fun id n acc -> (id, n) :: acc) tbl [] |> List.sort compare

(* Re-translate the captured live set in id order under each record's
   recorded context (privilege, MMU, SMC length override, injected
   corruption), re-fuse the captured superblocks from their recorded
   constituent traces, then re-apply the captured link-time meta and
   chain graph. The mirror CPU is temporarily forced to each record's
   translation regime and put back afterwards. *)
let rebuild_cache t records links regions region_links =
  let rt = t.rt in
  (* The rebuild re-runs every captured translation; letting those
     re-translations record static provenance again would double-count
     in the coordination ledger, so it is detached for the duration. *)
  let saved_ledger, saved_cov_static =
    match t.rule_translator with
    | Some tr ->
      let l = Translator_rule.ledger tr in
      let cs = Translator_rule.cov_static tr in
      Translator_rule.set_ledger tr None;
      Translator_rule.set_cov_static tr None;
      (l, cs)
    | None -> (None, None)
  in
  Fun.protect
    ~finally:(fun () ->
      match t.rule_translator with
      | Some tr ->
        Translator_rule.set_ledger tr saved_ledger;
        Translator_rule.set_cov_static tr saved_cov_static
      | None -> ())
  @@ fun () ->
  let saved_cpu = Cpu.save_words rt.Runtime.cpu in
  let translate =
    match t.rule_translator with
    | Some tr -> fun rt cache ~pc -> Translator_rule.translate tr rt cache ~pc
    | None -> Repro_tcg.Translator_qemu.translate
  in
  Tb.Cache.flush t.cache;
  let tbs =
    Array.map
      (fun r ->
        Cpu.set_mode rt.Runtime.cpu (if r.r_priv then Cpu.Supervisor else Cpu.User);
        Cpu.set_mmu_enabled rt.Runtime.cpu r.r_mmu;
        rt.Runtime.tb_override <- r.r_override;
        rt.Runtime.corrupt_override <- Some r.r_injected;
        Tb.Cache.set_ids t.cache (r.r_id - 1);
        match translate rt t.cache ~pc:r.r_pc with
        | Ok tb ->
          tb.Tb.hot <- r.r_hot;
          Tb.Cache.add_exact t.cache tb;
          Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb tb.Tb.guest_pc;
          Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb
            (tb.Tb.guest_pc + (4 * tb.Tb.guest_len) - 4);
          tb
        | Error _ ->
          raise
            (Snapshot.Corrupt
               (Printf.sprintf "cache rebuild: TB at %#x is no longer translatable"
                  r.r_pc)))
      records
  in
  rt.Runtime.tb_override <- None;
  rt.Runtime.corrupt_override <- None;
  Cpu.load_words rt.Runtime.cpu saved_cpu;
  (match t.rule_translator with
  | Some tr ->
    Array.iteri
      (fun i r ->
        match r.r_meta with
        | Some (elide, entry_conv) ->
          Translator_rule.restore_cache_meta tr tbs.(i) ~elide ~entry_conv
        | None -> ())
      records
  | None -> ());
  (* Superblocks re-fuse from their recorded constituent traces after
     the constituents carry their captured meta — the fused emission
     reads only the constituents' scheduled bodies, so the rebuilt
     region prog (after its own meta is re-applied) is bit-identical
     to the captured one. *)
  let region_tbs =
    Array.map
      (fun rg ->
        match t.rule_translator with
        | None ->
          raise (Snapshot.Corrupt "cache: region records in a qemu-mode snapshot")
        | Some tr -> (
          Tb.Cache.set_ids t.cache (rg.rg_id - 1);
          let trace = Array.to_list (Array.map (fun i -> tbs.(i)) rg.rg_members) in
          match Translator_rule.fuse_trace tr rt t.cache ~trace with
          | Some region ->
            region.Tb.hot <- rg.rg_hot;
            (match rg.rg_meta with
            | Some (elide, entry_conv) ->
              Translator_rule.restore_cache_meta tr region ~elide ~entry_conv
            | None -> ());
            region
          | None ->
            raise
              (Snapshot.Corrupt
                 (Printf.sprintf "cache rebuild: region %d is no longer fusable"
                    rg.rg_id))))
      regions
  in
  let all = Array.append tbs region_tbs in
  let apply_links owner link_table =
    Array.iteri
      (fun i slots ->
        Array.iteri
          (fun slot succ ->
            if succ >= 0 then begin
              if succ >= Array.length all then
                raise (Snapshot.Corrupt "cache: link to a nonexistent record");
              owner.(i).Tb.links.(slot) <- Some all.(succ)
            end)
          slots)
      link_table
  in
  apply_links tbs links;
  apply_links region_tbs region_links

let restore ?(rebuild = true) t snap =
  (match t.rt.Runtime.trace with
  | Some tr ->
    Trace.emit tr ~a:(if rebuild then 1 else 0) Trace.Snapshot "restore"
  | None -> ());
  (match Snapshot.find_opt snap "mode" with
  | Some m when m = mode_name t.mode -> ()
  | Some m ->
    raise
      (Snapshot.Corrupt
         (Printf.sprintf "snapshot was taken under mode %s, this machine is %s" m
            (mode_name t.mode)))
  | None -> raise (Snapshot.Corrupt "missing section mode"));
  Snapshot.restore_machine t.rt snap;
  (* Translator tables and rule health install before the cache
     rebuild: translation consults the blacklist and the quarantine
     set, and every health change flushed the captured cache, so the
     restored final health state is the one every live TB was
     translated under.

     Demotion state merges instead of replacing: a machine that
     quarantined a rule, blacklisted a PC or degraded its engine rung
     after the snapshot was taken must not re-trust it just because an
     older capture was optimistic. Health only ever ratchets down —
     blacklist and quarantine take the union, strikes the per-rule
     maximum, the rung floor the lower rung. (Restoring into a fresh
     machine merges with empty state, i.e. installs the snapshot's
     health verbatim, so save/restore bit-identity is unaffected.)
     Shadow-verification progress, by contrast, is taken from the
     snapshot as-is: rolling it back only means re-verifying, which is
     always sound. *)
  let tr_saved =
    match (t.rule_translator, t.ruleset, Snapshot.find_opt snap "translator") with
    | Some tr, Some rs, Some payload ->
      let saved, strikes, quarantined = decode_translator payload in
      let cur = Translator_rule.save_state tr in
      let cur_strikes, cur_quarantined = Ruleset.export_health rs in
      let merged =
        {
          saved with
          Translator_rule.s_blacklist =
            union_int saved.Translator_rule.s_blacklist
              cur.Translator_rule.s_blacklist;
        }
      in
      Translator_rule.restore_state tr merged;
      Ruleset.restore_health rs
        ~strikes:(max_strikes strikes cur_strikes)
        ~quarantined:(union_int quarantined cur_quarantined);
      Some merged
    | None, _, None -> None
    | Some _, _, None -> raise (Snapshot.Corrupt "missing section translator")
    | _ -> raise (Snapshot.Corrupt "translator section in a qemu-mode snapshot")
  in
  (match Snapshot.find_opt snap "degrade" with
  | Some payload ->
    let d = Snapshot.Dec.of_string ~name:"degrade" payload in
    let floor = rung_of_level (Snapshot.Dec.int d) in
    if not (Snapshot.Dec.finished d) then
      raise (Snapshot.Corrupt "degrade: trailing bytes");
    t.rung_floor <- lowest_rung t.rung_floor floor
  | None -> ());
  (* The rebuild re-translates the records with the mode's own
     translator, which is only faithful while the machine still runs on
     its natural rung. Once the floor has ratcheted below it (a sticky
     watchdog demotion, here or recorded in the snapshot), the captured
     TBs and the engine that will execute them disagree on host-state
     conventions — so a demoted machine flushes instead and lets the
     degraded engine retranslate on demand, which is guest-invariant. *)
  if rebuild && t.rung_floor = natural_rung t then begin
    let records, links, regions, region_links =
      decode_cache (Snapshot.find snap "cache")
    in
    rebuild_cache t records links regions region_links
  end
  else Tb.Cache.flush t.cache;
  (* Counters go in verbatim last: the rebuild itself translates (and
     may walk page tables), which perturbs stats, translator counters
     and potentially TLB/injector state. *)
  (match (t.rule_translator, tr_saved) with
  | Some tr, Some saved -> Translator_rule.restore_counters tr saved
  | _ -> ());
  let ctl = Snapshot.Dec.of_string ~name:"cachectl" (Snapshot.find snap "cachectl") in
  Tb.Cache.set_full_flushes t.cache (Snapshot.Dec.int ctl);
  Tb.Cache.set_ids t.cache (Snapshot.Dec.int ctl);
  let redo name f =
    let d = Snapshot.Dec.of_string ~name (Snapshot.find snap name) in
    f d
  in
  redo "stats" (fun d ->
      Stats.load_array (Runtime.stats t.rt) (Snapshot.Dec.int_array d));
  redo "tlb" (fun d ->
      Tlb.restore t.rt.Runtime.ctx.Runtime.Exec.tlb (Snapshot.Dec.int_array d));
  (match t.rt.Runtime.inject with
  | Some inj ->
    redo "inject" (fun d -> Fi.import inj (Snapshot.Dec.i64_array d))
  | None -> ());
  t.pending_resume <-
    (match Snapshot.find_opt snap "resume" with
    | Some p -> Some (decode_resume p)
    | None -> None);
  t.journal <-
    (match Snapshot.find_opt snap "journal" with
    | Some j -> Journal.of_string j
    | None -> Journal.create ());
  t.last_checkpoint <- None;
  t.stop_checkpoint <- None

(* ---- snapshot readers for front ends ---- *)

let snapshot_mode snap =
  let m = Snapshot.find snap "mode" in
  match mode_of_name m with
  | Some mode -> mode
  | None -> raise (Snapshot.Corrupt (Printf.sprintf "unknown mode %s" m))

let snapshot_injector snap =
  match Snapshot.find_opt snap "inject" with
  | None -> None
  | Some payload ->
    let d = Snapshot.Dec.of_string ~name:"inject" payload in
    Some (Fi.of_export (Snapshot.Dec.i64_array d))

let snapshot_ram_kib snap = String.length (Snapshot.find snap "ram") / 1024

let snapshot_clean snap =
  (* Clean = usable as a watchdog/restart rollback target: either the
     snapshot was taken outside a run (no resume section) or at an
     engine-dispatch boundary where the pending [on_enter] rebuilds all
     host-resident state ([rneeds_enter]). Mid-chain captures carry
     inter-TB host state a restarted engine would not re-establish. *)
  match Snapshot.find_opt snap "resume" with
  | None -> true
  | Some p -> (decode_resume p).Engine.rneeds_enter

(* ---- the persistent AOT code depot ---- *)

let depot_err section fmt =
  Printf.ksprintf
    (fun reason -> raise (Depot.Depot_error { section; reason }))
    fmt

(* Install-time fidelity guard: a depot recipe is only replayed when
   the guest code it came from is byte-for-byte what this machine's
   memory holds at install time. The checksum runs over the decoded
   instruction rendering, so it also covers the decoder's view. *)
let guest_checksum (tb : Tb.t) =
  let b = Buffer.create 128 in
  Array.iter
    (fun i -> Buffer.add_string b (Format.asprintf "%a;" Repro_arm.Insn.pp i))
    tb.Tb.guest_insns;
  Snapshot.fnv1a32 (Buffer.contents b)

let cache_srcsums t =
  Tb.Cache.to_list t.cache
  |> List.sort (fun (a : Tb.t) (b : Tb.t) -> compare a.Tb.id b.Tb.id)
  |> List.map guest_checksum
  |> Array.of_list

(* The depot's health section carries only the durable demotions —
   PC blacklist, per-rule strikes, quarantined rules. Shadow
   verification progress deliberately stays out: depot-installed TBs
   re-verify on every warm boot, and that re-verification is the
   sensor the depot's self-repair loop (poison write-back) runs on. *)
let encode_depot_health ~blacklist ~strikes ~quarantined =
  let b = Snapshot.Enc.create () in
  Snapshot.Enc.int_array b (Array.of_list blacklist);
  Snapshot.Enc.int b (List.length strikes);
  List.iter
    (fun (x, y) ->
      Snapshot.Enc.int b x;
      Snapshot.Enc.int b y)
    strikes;
  Snapshot.Enc.int_array b (Array.of_list quarantined);
  Snapshot.Enc.contents b

let decode_depot_health payload =
  let d = Snapshot.Dec.of_string ~name:"health" payload in
  let blacklist = Array.to_list (Snapshot.Dec.int_array d) in
  let n = Snapshot.Dec.int d in
  if n < 0 then raise (Snapshot.Corrupt "health: negative strike count");
  let strikes =
    List.init n (fun _ ->
        let x = Snapshot.Dec.int d in
        let y = Snapshot.Dec.int d in
        (x, y))
  in
  let quarantined = Array.to_list (Snapshot.Dec.int_array d) in
  if not (Snapshot.Dec.finished d) then
    raise (Snapshot.Corrupt "health: trailing bytes");
  (blacklist, strikes, quarantined)

let depot_compat t =
  {
    Depot.c_mode = mode_name t.mode;
    c_rules_digest =
      (match t.ruleset with Some rs -> Depot.ruleset_digest rs | None -> 0);
    c_hot_threshold = Engine.hot_threshold;
  }

let depot_capture t =
  let natural = natural_rung t in
  if t.rung_floor <> natural then
    depot_err "compat"
      "machine floor is the %s rung; a depot captures its natural %s engine's \
       cache"
      (rung_name t.rung_floor) (rung_name natural);
  let rules =
    match t.ruleset with
    | Some rs -> Repro_rules.Serialize.save rs
    | None -> ""
  in
  let health =
    match (t.rule_translator, t.ruleset) with
    | Some tr, Some rs ->
      let saved = Translator_rule.save_state tr in
      let strikes, quarantined = Ruleset.export_health rs in
      encode_depot_health ~blacklist:saved.Translator_rule.s_blacklist ~strikes
        ~quarantined
    | _ -> encode_depot_health ~blacklist:[] ~strikes:[] ~quarantined:[]
  in
  Depot.create ~compat:(depot_compat t) ~rules ~cache:(encode_cache t)
    ~srcsum:(cache_srcsums t) ~health

(* One install wave: re-translate every still-pending recipe against
   guest memory as it stands right now, keeping whatever matches its
   recorded checksum. The pass is machine-neutral — CPU, env, RAM,
   TLB, devices, injector PRNG and statistics round-trip through a
   scratch capture, the engine-transient runtime fields are put back
   by hand (restore_machine resets them to between-TB defaults, which
   is wrong for a pass spliced into a live engine), the translator's
   counters are pinned back and its ledger detached — so a warm run's
   guest-visible behaviour is the cold run's. Recipes whose guest
   bytes do not match stay pending: the guest has not built that world
   yet (page tables before the MMU turns on, code it relocates later);
   the first miss in the new regime triggers the next wave. *)
let depot_pass t dp =
  let rt = t.rt in
  let gen = Tb.Cache.generation t.cache in
  if dp.dp_generation <> gen then begin
    (* every earlier install died with the cache flush *)
    Array.fill dp.dp_installed 0 (Array.length dp.dp_installed) None;
    Array.blit dp.dp_skip 0 dp.dp_dead 0 (Array.length dp.dp_skip);
    dp.dp_installed_count <- 0;
    dp.dp_generation <- gen
  end;
  let n = Array.length dp.dp_records in
  let fresh = ref [] in
  let saved_ledger, saved_cov_static =
    match t.rule_translator with
    | Some tr ->
      let l = Translator_rule.ledger tr in
      let cs = Translator_rule.cov_static tr in
      Translator_rule.set_ledger tr None;
      Translator_rule.set_cov_static tr None;
      (l, cs)
    | None -> (None, None)
  in
  let saved_tr = Option.map Translator_rule.save_state t.rule_translator in
  let scratch = Snapshot.create () in
  Snapshot.capture_machine rt scratch;
  let pcw = rt.Runtime.pending_code_write
  and scw = rt.Runtime.suppress_code_write
  and tbov = rt.Runtime.tb_override
  and cov = rt.Runtime.corrupt_override
  and fps = rt.Runtime.fault_producers in
  Fun.protect
    ~finally:(fun () ->
      Snapshot.restore_machine rt scratch;
      rt.Runtime.pending_code_write <- pcw;
      rt.Runtime.suppress_code_write <- scw;
      rt.Runtime.tb_override <- tbov;
      rt.Runtime.corrupt_override <- cov;
      rt.Runtime.fault_producers <- fps;
      (match (t.rule_translator, saved_tr) with
      | Some tr, Some s ->
        Translator_rule.restore_counters tr s;
        Translator_rule.set_ledger tr saved_ledger;
        Translator_rule.set_cov_static tr saved_cov_static
      | _ -> ());
      (* write-protect what stuck, exactly as cold translation would *)
      List.iter
        (fun (tb : Tb.t) ->
          if not (Tb.is_region tb) then begin
            Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb tb.Tb.guest_pc;
            Tlb.clear_write_tag rt.Runtime.ctx.Runtime.Exec.tlb
              (tb.Tb.guest_pc + (4 * tb.Tb.guest_len) - 4)
          end)
        !fresh)
  @@ fun () ->
  let translate =
    match t.rule_translator with
    | Some tr -> fun rt cache ~pc -> Translator_rule.translate tr rt cache ~pc
    | None -> Repro_tcg.Translator_qemu.translate
  in
  Array.iteri
    (fun i r ->
      if Option.is_none dp.dp_installed.(i) && not dp.dp_dead.(i) then
        match
          Tb.Cache.find_plain t.cache ~pc:r.r_pc ~privileged:r.r_priv
            ~mmu_on:r.r_mmu
        with
        | Some tb ->
          (* the engine already translated this PC cold; adopt it so
             regions and links over it can still install *)
          dp.dp_installed.(i) <- Some tb;
          dp.dp_installed_count <- dp.dp_installed_count + 1
        | None -> (
          Cpu.set_mode rt.Runtime.cpu
            (if r.r_priv then Cpu.Supervisor else Cpu.User);
          Cpu.set_mmu_enabled rt.Runtime.cpu r.r_mmu;
          rt.Runtime.tb_override <- r.r_override;
          rt.Runtime.corrupt_override <- Some r.r_injected;
          match translate rt t.cache ~pc:r.r_pc with
          | Ok tb when guest_checksum tb = dp.dp_srcsum.(i) ->
            tb.Tb.hot <- r.r_hot;
            Tb.Cache.add_exact t.cache tb;
            dp.dp_installed.(i) <- Some tb;
            dp.dp_installed_count <- dp.dp_installed_count + 1;
            Hashtbl.replace dp.dp_pcs r.r_pc ();
            fresh := tb :: !fresh
          | Ok _ | Error _ -> ()))
    dp.dp_records;
  rt.Runtime.tb_override <- None;
  rt.Runtime.corrupt_override <- None;
  (* captured link-time meta, for freshly installed recipes only —
     adopted TBs evolve their own meta through the live link hook *)
  (match t.rule_translator with
  | Some tr ->
    Array.iteri
      (fun i r ->
        match (dp.dp_installed.(i), r.r_meta) with
        | Some tb, Some (elide, entry_conv) when List.memq tb !fresh ->
          Translator_rule.restore_cache_meta tr tb ~elide ~entry_conv
        | _ -> ())
      dp.dp_records
  | None -> ());
  (* superblocks whose constituents all made it *)
  (match t.rule_translator with
  | None -> ()
  | Some tr ->
    Array.iteri
      (fun j rg ->
        let k = n + j in
        if Option.is_none dp.dp_installed.(k) && not dp.dp_dead.(k) then begin
          let members = Array.map (fun i -> dp.dp_installed.(i)) rg.rg_members in
          if Array.for_all Option.is_some members then begin
            let head = dp.dp_records.(rg.rg_members.(0)) in
            match
              Tb.Cache.find t.cache ~pc:head.r_pc ~privileged:head.r_priv
                ~mmu_on:head.r_mmu
            with
            | Some tb when Tb.is_region tb ->
              (* the live engine fused its own superblock here first *)
              dp.dp_dead.(k) <- true
            | _ -> (
              let trace = Array.to_list (Array.map Option.get members) in
              match Translator_rule.fuse_trace tr rt t.cache ~trace with
              | Some region ->
                region.Tb.hot <- rg.rg_hot;
                (match rg.rg_meta with
                | Some (elide, entry_conv) ->
                  Translator_rule.restore_cache_meta tr region ~elide
                    ~entry_conv
                | None -> ());
                dp.dp_installed.(k) <- Some region;
                dp.dp_installed_count <- dp.dp_installed_count + 1;
                Hashtbl.replace dp.dp_pcs region.Tb.guest_pc ()
              | None -> dp.dp_dead.(k) <- true)
          end
        end)
      dp.dp_regions);
  (* the captured chain graph, filling only empty slots between
     depot-tracked TBs — links the live engine already made stand *)
  let apply_links base table =
    Array.iteri
      (fun i slots ->
        match dp.dp_installed.(base + i) with
        | None -> ()
        | Some tb ->
          Array.iteri
            (fun slot succ ->
              if
                succ >= 0
                && succ < Array.length dp.dp_installed
                && slot < Array.length tb.Tb.links
              then
                match (tb.Tb.links.(slot), dp.dp_installed.(succ)) with
                | None, Some s -> tb.Tb.links.(slot) <- Some s
                | _ -> ())
            slots)
      table
  in
  apply_links 0 dp.dp_links;
  apply_links n dp.dp_region_links

let depot_install t depot =
  let c = Depot.compat depot in
  let here = depot_compat t in
  if c.Depot.c_mode <> here.Depot.c_mode then
    depot_err "compat" "depot built under mode %s, this machine runs %s"
      c.Depot.c_mode here.Depot.c_mode;
  if c.Depot.c_rules_digest <> here.Depot.c_rules_digest then
    depot_err "compat"
      "ruleset digest mismatch (depot %#x, machine %#x): recipes are only \
       replayable under the ruleset that learned them"
      c.Depot.c_rules_digest here.Depot.c_rules_digest;
  if c.Depot.c_hot_threshold <> here.Depot.c_hot_threshold then
    depot_err "compat" "hot threshold mismatch (depot %d, engine %d)"
      c.Depot.c_hot_threshold here.Depot.c_hot_threshold;
  let natural = natural_rung t in
  if t.rung_floor <> natural then
    depot_err "compat"
      "machine floor is the %s rung; depot recipes are translated for its \
       natural %s engine"
      (rung_name t.rung_floor) (rung_name natural);
  let records, links, regions, region_links =
    try decode_cache (Depot.cache_payload depot) with
    | Snapshot.Corrupt reason -> depot_err "cache" "%s" reason
    | Invalid_argument reason -> depot_err "cache" "%s" reason
  in
  let srcsum = Depot.srcsum depot in
  if Array.length srcsum <> Array.length records then
    depot_err "srcsum" "%d checksums for %d recipes" (Array.length srcsum)
      (Array.length records);
  if Array.length regions > 0 && t.rule_translator = None then
    depot_err "cache" "superblock recipes in a qemu-mode depot";
  let blacklist, strikes, quarantined =
    try decode_depot_health (Depot.health depot) with
    | Snapshot.Corrupt reason -> depot_err "health" "%s" reason
    | Invalid_argument reason -> depot_err "health" "%s" reason
  in
  (* The depot's durable demotions ratchet in before any recipe is
     replayed (union/max merge, the same policy snapshot restore
     uses); the flush keeps no TB translated under the pre-merge
     health alive. *)
  Tb.Cache.flush t.cache;
  (match (t.rule_translator, t.ruleset) with
  | Some tr, Some rs ->
    let cur = Translator_rule.save_state tr in
    let cur_strikes, cur_quarantined = Ruleset.export_health rs in
    Translator_rule.restore_state tr
      {
        cur with
        Translator_rule.s_blacklist =
          union_int cur.Translator_rule.s_blacklist blacklist;
      };
    Ruleset.restore_health rs
      ~strikes:(max_strikes strikes cur_strikes)
      ~quarantined:(union_int quarantined cur_quarantined)
  | _ -> ());
  let n = Array.length records and m = Array.length regions in
  let qpcs = Hashtbl.create 8 in
  List.iter
    (fun pc -> Hashtbl.replace qpcs pc ())
    (Depot.quarantined_pcs depot);
  let skip = Array.make (n + m) false in
  Array.iteri
    (fun i r -> if Hashtbl.mem qpcs r.r_pc then skip.(i) <- true)
    records;
  Array.iteri
    (fun j rg ->
      if Array.exists (fun i -> skip.(i)) rg.rg_members then skip.(n + j) <- true)
    regions;
  let keys = Hashtbl.create (2 * (n + 1)) in
  Array.iteri
    (fun i r -> Hashtbl.replace keys (r.r_pc, r.r_priv, r.r_mmu) i)
    records;
  let dp =
    {
      dp_records = records;
      dp_links = links;
      dp_regions = regions;
      dp_region_links = region_links;
      dp_srcsum = srcsum;
      dp_keys = keys;
      dp_skip = skip;
      dp_installed = Array.make (n + m) None;
      dp_dead = Array.copy skip;
      dp_generation = Tb.Cache.generation t.cache;
      dp_installed_count = 0;
      dp_pcs = Hashtbl.create 64;
      dp_poisoned = [];
    }
  in
  t.depot <- Some dp;
  (* Wave 1 installs whatever current guest memory supports — at a
     cold boot, the MMU-off recipes. The rest stays pending for
     miss-triggered waves once the guest builds those worlds. *)
  (try depot_pass t dp with
  | Snapshot.Corrupt reason | Invalid_argument reason ->
    t.depot <- None;
    depot_err "cache" "recipe replay failed: %s" reason);
  dp.dp_installed_count

(* Miss-triggered wave: the engine missed on (pc, regime); if that key
   is a still-pending depot recipe, run a wave and serve the result.
   A recipe that cannot install even at its own miss is dead — the
   guest memory it was recorded against no longer exists — so it never
   triggers another wave. A recipe poisoned in a way the checksums
   cannot see (it decodes, installs, then misbehaves semantically)
   surfaces as an exception here; the depot is dropped wholesale and
   the run continues cold. *)
let depot_hit t ~pc =
  match t.depot with
  | None -> None
  | Some dp -> (
    let rt = t.rt in
    let privileged = Runtime.privileged rt in
    let mmu_on = Cpu.mmu_enabled rt.Runtime.cpu in
    match Hashtbl.find_opt dp.dp_keys (pc, privileged, mmu_on) with
    | None -> None
    | Some i ->
      let stale = dp.dp_generation <> Tb.Cache.generation t.cache in
      if (not stale) && (Option.is_some dp.dp_installed.(i) || dp.dp_dead.(i))
      then None
      else begin
        (match depot_pass t dp with
        | () -> ()
        | exception (Snapshot.Corrupt _ | Invalid_argument _ | Not_found) ->
          t.depot <- None);
        match t.depot with
        | None -> None
        | Some dp -> (
          match dp.dp_installed.(i) with
          | Some tb -> Some tb
          | None ->
            dp.dp_dead.(i) <- true;
            None)
      end)

let depot_coverage t =
  match t.depot with
  | None -> (0, 0)
  | Some dp ->
    let dead =
      Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dp.dp_dead
    in
    ( dp.dp_installed_count,
      Array.length dp.dp_installed - dp.dp_installed_count - dead )

let depot_poisoned t =
  match t.depot with
  | None -> []
  | Some dp -> List.sort compare dp.dp_poisoned

(* Structural verification without a machine: decode every engine-level
   payload the way install would. Returns (plain recipes, superblocks). *)
let depot_check depot =
  let records, _, regions, _ =
    try decode_cache (Depot.cache_payload depot) with
    | Snapshot.Corrupt reason -> depot_err "cache" "%s" reason
    | Invalid_argument reason -> depot_err "cache" "%s" reason
  in
  if Array.length (Depot.srcsum depot) <> Array.length records then
    depot_err "srcsum" "%d checksums for %d recipes"
      (Array.length (Depot.srcsum depot))
      (Array.length records);
  (try ignore (decode_depot_health (Depot.health depot)) with
  | Snapshot.Corrupt reason -> depot_err "health" "%s" reason
  | Invalid_argument reason -> depot_err "health" "%s" reason);
  (Array.length records, Array.length regions)

(* Fleet write-back: fold breaker-quarantined rule ids into the depot's
   durable health. Returns true when the set grew (save warranted). *)
let depot_quarantine_rules depot ids =
  let blacklist, strikes, quarantined =
    try decode_depot_health (Depot.health depot) with
    | Snapshot.Corrupt reason -> depot_err "health" "%s" reason
    | Invalid_argument reason -> depot_err "health" "%s" reason
  in
  let merged = union_int ids quarantined in
  if List.length merged = List.length quarantined then false
  else begin
    Depot.set_health depot
      (encode_depot_health ~blacklist ~strikes ~quarantined:merged);
    true
  end

(* ---- the run loop: journal hooks, checkpoints, watchdog ---- *)

let postmortem_dump ?profile t ~reason =
  match t.last_checkpoint with
  | None -> None
  | Some cp ->
    (* fresh copy: the stored checkpoint stays reusable *)
    let dump = Snapshot.of_string (Snapshot.to_string cp) in
    Snapshot.add dump "expected" (Journal.to_string t.journal);
    Snapshot.add dump "reason" reason;
    (* Where was the time going when it died? The hot-block table is
       the first thing a post-mortem reader wants. *)
    (match profile with
    | Some p ->
      Snapshot.add dump "profile"
        (Format.asprintf "%a" (Repro_tcg.Profile.pp_report ~top:10) p)
    | None -> ());
    Some dump

let interp_translate rt cache ~pc =
  rt.Runtime.tb_override <- Some 1;
  let r = Repro_tcg.Translator_qemu.translate rt cache ~pc in
  rt.Runtime.tb_override <- None;
  r

let run ?chaining ?profile ?(max_guest_insns = max_int) ?deadline
    ?(checkpoint_every = 0) ?on_checkpoint ?(watchdog = true) ?on_postmortem t =
  (* Arm the bus injection point only now, so image loading and other
     pre-run setup are never perturbed. *)
  t.rt.Runtime.bus.Repro_machine.Bus.inject <- t.rt.Runtime.inject;
  (* Entropy-capture invariant: every stochastic decision this run can
     make (bus, MMU, engine, translator sites) must draw from the one
     injector whose PRNG cursor the snapshot captures — a second
     entropy source would make restored runs diverge silently. *)
  (match t.rt.Runtime.inject with
  | Some inj ->
    assert (
      match t.rt.Runtime.bus.Repro_machine.Bus.inject with
      | Some b -> b == inj
      | None -> false)
  | None -> ());
  let stats = Runtime.stats t.rt in
  let start = stats.Stats.guest_insns in
  t.stop_checkpoint <- None;
  (* journal hooks: MMIO reads, fired faults, delivered IRQs *)
  t.rt.Runtime.bus.Repro_machine.Bus.device_read_hook <-
    Some
      (fun paddr value ->
        Journal.record t.journal
          (Journal.Dev_read { at = stats.Stats.guest_insns; paddr; value }));
  (match t.rt.Runtime.inject with
  | Some inj ->
    Fi.set_fire_hook inj
      (Some
         (fun site ->
           Journal.record t.journal
             (Journal.Fault
                { at = stats.Stats.guest_insns; site = Fi.site_name site })))
  | None -> ());
  let on_irq pc =
    Journal.record t.journal (Journal.Irq { at = stats.Stats.guest_insns; pc })
  in
  Fun.protect
    ~finally:(fun () ->
      t.rt.Runtime.bus.Repro_machine.Bus.device_read_hook <- None;
      match t.rt.Runtime.inject with
      | Some inj -> Fi.set_fire_hook inj None
      | None -> ())
  @@ fun () ->
  let checkpointing =
    watchdog || checkpoint_every > 0 || on_checkpoint <> None
  in
  let engine_cp resume =
    (* The journal window restarts at clean checkpoints; clearing
       before the capture makes the serialized journal the
       post-checkpoint state, so a restored run and the uninterrupted
       one keep identical journals from here on. *)
    (match t.rt.Runtime.scope with
    | Some sc -> Scope.note_checkpoint sc ~at:stats.Stats.guest_insns
    | None -> ());
    if resume.Engine.rneeds_enter then Journal.clear t.journal;
    let snap = capture ~resume t in
    t.stop_checkpoint <- Some snap;
    (* Only clean engine-dispatch points serve as watchdog rollback
       targets: a mid-chain checkpoint can carry guest flags live in
       host EFLAGS under an inter-TB convention a degraded engine
       would not re-establish. *)
    if resume.Engine.rneeds_enter then t.last_checkpoint <- Some snap;
    match on_checkpoint with Some f -> f snap | None -> ()
  in
  (* The watchdog needs a rollback target before anything can livelock:
     take checkpoint zero at the starting state. *)
  if watchdog && t.last_checkpoint = None then begin
    let resume =
      match t.pending_resume with
      | Some r -> r
      | None ->
        Runtime.sync_cpu_to_env t.rt;
        Runtime.refresh_irq_pending t.rt;
        Journal.clear t.journal;
        {
          Engine.rpc = Cpu.get_pc t.rt.Runtime.cpu;
          rprivileged = Runtime.privileged t.rt;
          rmmu_on = Cpu.mmu_enabled t.rt.Runtime.cpu;
          rneeds_enter = true;
        }
    in
    t.last_checkpoint <- Some (capture ~resume t)
  end;
  let engine rung resume =
    let remaining = max_guest_insns - (stats.Stats.guest_insns - start) in
    let common translate ?link_hook ?on_enter ?on_executed ?on_hot () =
      Engine.run t.rt t.cache ~translate ?link_hook ?on_enter ?on_executed
        ?chaining ?profile ~max_guest_insns:remaining ?deadline ~checkpoint_every
        ?on_checkpoint:(if checkpointing then Some engine_cp else None)
        ?resume ~on_irq ?on_hot ()
    in
    match rung with
    | Rung_rules ->
      let tr =
        match t.rule_translator with Some tr -> tr | None -> assert false
      in
      (* Superblock fusion only under the full rules engine with the
         [regions] flag: degraded watchdog rungs replay conservatively,
         and the formation guard in [form_region] re-checks the flag. *)
      let on_hot =
        match t.mode with
        | Rules o when o.Opt.regions ->
          Some (fun tb -> Translator_rule.form_region tr t.rt t.cache tb)
        | _ -> None
      in
      common
        (fun rt cache ~pc ->
          match depot_hit t ~pc with
          | Some tb -> Ok tb
          | None -> Translator_rule.translate tr rt cache ~pc)
        ?on_hot
        ~link_hook:(fun ~pred ~slot ~succ ->
          Translator_rule.link_hook tr ~pred ~slot ~succ)
        ~on_enter:(fun tb -> Translator_rule.on_enter tr t.rt tb)
        ~on_executed:(fun tb ~outcome ~guest ->
          match Translator_rule.on_executed tr t.rt tb ~outcome ~guest with
          | `Continue -> `Continue
          | `Invalidate ->
            (* a depot-served TB failing shadow verification poisons
               its depot entry: recorded here, written back by the
               front end so the entry never reloads *)
            (match t.depot with
            | Some dp when Hashtbl.mem dp.dp_pcs tb.Tb.guest_pc ->
              if not (List.mem tb.Tb.guest_pc dp.dp_poisoned) then
                dp.dp_poisoned <- tb.Tb.guest_pc :: dp.dp_poisoned
            | _ -> ());
            Journal.record t.journal
              (Journal.Diverge
                 {
                   at = stats.Stats.guest_insns;
                   pc = tb.Tb.guest_pc;
                   detail = "shadow-repair";
                 });
            (match on_postmortem with
            | Some f -> (
              let reason =
                Printf.sprintf "shadow-divergence at %#x" tb.Tb.guest_pc
              in
              match postmortem_dump ?profile t ~reason with
              | Some dump -> f ~reason dump
              | None -> ())
            | None -> ());
            `Invalidate)
        ()
    | Rung_baseline ->
      let translate =
        match t.mode with
        | Qemu ->
          (* baseline is qemu-mode's natural rung: depot recipes serve
             its misses too *)
          fun rt cache ~pc -> (
            match depot_hit t ~pc with
            | Some tb -> Ok tb
            | None -> Repro_tcg.Translator_qemu.translate rt cache ~pc)
        | Rules _ -> Repro_tcg.Translator_qemu.translate
      in
      common translate ()
    | Rung_interp -> common interp_translate ()
  in
  let rec attempt rung resume =
    let res = engine rung resume in
    match res.Engine.reason with
    | `Livelock pc when watchdog -> (
      match (degrade rung, t.last_checkpoint) with
      | Some next, Some cp ->
        let reason =
          Printf.sprintf "livelock at %#x under the %s engine" pc
            (rung_name rung)
        in
        (match t.rt.Runtime.trace with
        | Some tr -> Trace.emit tr ~a:pc Trace.Watchdog "livelock"
        | None -> ());
        (match on_postmortem with
        | Some f -> (
          match postmortem_dump ?profile t ~reason with
          | Some dump -> f ~reason dump
          | None -> ())
        | None -> ());
        (* Roll back to the last clean checkpoint and re-execute under
           the next rung down. The corrupted translation is dropped
           with the rest of the cache (no rebuild); the degraded
           translator regenerates code on demand. *)
        restore ~rebuild:false t cp;
        t.last_checkpoint <- Some cp;
        (* Sticky degradation: the floor ratchets down with the rung, so
           captures taken from here on record the demotion and a restart
           from a later snapshot never re-trusts the engine that just
           livelocked. *)
        t.rung_floor <- lowest_rung t.rung_floor next;
        stats.Stats.livelocks_recovered <- stats.Stats.livelocks_recovered + 1;
        (match t.rt.Runtime.trace with
        | Some tr ->
          Trace.emit tr
            ~a:(match next with
                | Rung_rules -> 0
                | Rung_baseline -> 1
                | Rung_interp -> 2)
            Trace.Watchdog "degrade"
        | None -> ());
        let resume = t.pending_resume in
        t.pending_resume <- None;
        attempt next resume
      | _ -> res)
    | _ -> res
  in
  let first_rung = lowest_rung (natural_rung t) t.rung_floor in
  let resume = t.pending_resume in
  t.pending_resume <- None;
  let res = attempt first_rung resume in
  (match res.Engine.reason with
  | `Halted code ->
    Journal.record t.journal
      (Journal.Halt { at = stats.Stats.guest_insns; code });
    t.stop_checkpoint <- None
  | `Livelock _ -> t.stop_checkpoint <- None
  | `Deadline ->
    (* A timed-out request is discarded, not resumed: the stop point is
       arbitrary relative to the workload, so no resumable stop
       checkpoint is published. *)
    t.stop_checkpoint <- None
  | `Insn_limit -> ());
  res

(* ---- deterministic replay ---- *)

type replay_report = {
  rep_reason : string option;
  rep_expected : Journal.event list;
  rep_actual : Journal.event list;
  rep_result : Engine.result;
  rep_ok : bool;
}

let replay ?(slack = 10_000) t dump =
  restore t dump;
  let expected =
    match Snapshot.find_opt dump "expected" with
    | Some s -> Journal.events (Journal.of_string s)
    | None -> []
  in
  let reason = Snapshot.find_opt dump "reason" in
  t.journal <- Journal.create ();
  let stats = Runtime.stats t.rt in
  let budget =
    match List.rev expected with
    | last :: _ -> max 1 (Journal.at last - stats.Stats.guest_insns + slack)
    | [] -> slack
  in
  let res = run ~watchdog:false ~max_guest_insns:budget t in
  let actual = Journal.events t.journal in
  let rec is_prefix exp act =
    match (exp, act) with
    | [], _ -> true
    | e :: es, a :: rest when e = a -> is_prefix es rest
    | _ -> false
  in
  {
    rep_reason = reason;
    rep_expected = expected;
    rep_actual = actual;
    rep_result = res;
    rep_ok = is_prefix expected actual;
  }
