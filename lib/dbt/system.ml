module Runtime = Repro_tcg.Runtime
module Engine = Repro_tcg.Engine
module Tb = Repro_tcg.Tb
module Helpers = Repro_tcg.Helpers
module Devices = Repro_machine.Devices

type mode = Qemu | Rules of Opt.t

let mode_name = function
  | Qemu -> "qemu"
  | Rules o -> "rules:" ^ Opt.name o

type t = {
  mode : mode;
  rt : Runtime.t;
  cache : Tb.Cache.t;
  rule_translator : Translator_rule.t option;
}

let create ?ram_kib ?ruleset ?tb_capacity ?inject ?shadow_depth
    ?quarantine_threshold mode =
  let rt = Runtime.create ?ram_kib ?inject () in
  Helpers.install rt;
  let cache = Tb.Cache.create ?capacity:tb_capacity () in
  rt.Runtime.is_code_page <- Tb.Cache.is_code_page cache;
  let rule_translator =
    match mode with
    | Qemu -> None
    | Rules opt ->
      let ruleset =
        match ruleset with Some r -> r | None -> Repro_rules.Builtin.ruleset ()
      in
      Some
        (Translator_rule.create ~opt ~ruleset ?shadow_depth
           ?quarantine_threshold ())
  in
  { mode; rt; cache; rule_translator }

let load_image t origin words = Runtime.load_image t.rt origin words

let run ?chaining ?profile ?max_guest_insns t =
  (* Arm the bus injection point only now, so image loading and other
     pre-run setup are never perturbed. *)
  t.rt.Runtime.bus.Repro_machine.Bus.inject <- t.rt.Runtime.inject;
  match t.rule_translator with
  | None ->
    Engine.run t.rt t.cache ~translate:Repro_tcg.Translator_qemu.translate ?chaining
      ?profile ?max_guest_insns ()
  | Some tr ->
    Engine.run t.rt t.cache
      ~translate:(fun rt cache ~pc -> Translator_rule.translate tr rt cache ~pc)
      ~link_hook:(fun ~pred ~slot ~succ -> Translator_rule.link_hook tr ~pred ~slot ~succ)
      ~on_enter:(fun tb -> Translator_rule.on_enter tr t.rt tb)
      ~on_executed:(fun tb ~outcome ~guest ->
        Translator_rule.on_executed tr t.rt tb ~outcome ~guest)
      ?chaining ?profile ?max_guest_insns ()

let stats t = Runtime.stats t.rt
let cpu t = t.rt.Runtime.cpu
let uart_output t = Devices.Uart.output t.rt.Runtime.bus.Repro_machine.Bus.uart

let set_timer t ~period =
  let timer = t.rt.Runtime.bus.Repro_machine.Bus.timer in
  Devices.Timer.write timer 0x4 period;
  Devices.Timer.write timer 0x0 1
