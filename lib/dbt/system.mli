(** Convenience façade: a complete emulated machine under either the
    QEMU-style baseline or the rule-based engine at a chosen
    optimization level. This is the API the examples, experiments and
    CLI drive. *)

open Repro_common

type mode =
  | Qemu  (** the unmodified QEMU 6.1 stand-in (baseline) *)
  | Rules of Opt.t  (** the learning-based engine *)

val mode_name : mode -> string

type t = {
  mode : mode;
  rt : Repro_tcg.Runtime.t;
  cache : Repro_tcg.Tb.Cache.t;
  rule_translator : Translator_rule.t option;
}

val create :
  ?ram_kib:int ->
  ?ruleset:Repro_rules.Ruleset.t ->
  ?tb_capacity:int ->
  ?inject:Repro_faultinject.Faultinject.t ->
  ?shadow_depth:int ->
  ?quarantine_threshold:int ->
  mode ->
  t
(** [ruleset] defaults to the builtin set; ignored in [Qemu] mode.
    [tb_capacity] bounds the code cache (default 4096 TBs; at capacity
    the whole cache is flushed, QEMU's buffer-full policy).

    [inject] arms every fault-injection point (MMU, engine,
    translators; the bus point is armed when {!run} starts so image
    loading is never perturbed). [shadow_depth] and
    [quarantine_threshold] configure shadow verification of
    rule-translated TBs (see {!Translator_rule}); ignored in [Qemu]
    mode. *)

val load_image : t -> Word32.t -> Word32.t array -> unit

val run :
  ?chaining:bool ->
  ?profile:Repro_tcg.Profile.t ->
  ?max_guest_insns:int ->
  t ->
  Repro_tcg.Engine.result
(** Run from the current CPU state (reset state initially).
    [chaining] (default true) toggles TB block chaining — the ablation
    substrate for the inter-TB experiments. [profile], when given,
    accumulates a per-TB hot-block profile (see
    {!Repro_tcg.Profile}). *)

val stats : t -> Repro_x86.Stats.t
val cpu : t -> Repro_arm.Cpu.t
val uart_output : t -> string
val set_timer : t -> period:int -> unit
(** Pre-arm the platform timer (alternative to the guest programming
    it over MMIO). *)
