(** Convenience façade: a complete emulated machine under either the
    QEMU-style baseline or the rule-based engine at a chosen
    optimization level. This is the API the examples, experiments and
    CLI drive.

    Robustness layer: the machine can be checkpointed into
    crash-consistent {!Repro_snapshot.Snapshot} containers and
    restored bit-identically (CPU, RAM, TLB, devices, injector PRNG,
    statistics, translation cache and its chain graph, resume cursor);
    a {!Repro_snapshot.Journal} records externally-visible events at
    retired-instruction timestamps; and a livelock watchdog rolls a
    runaway host loop back to the last checkpoint and re-executes
    under a degraded engine instead of killing the process. *)

open Repro_common
module Snapshot := Repro_snapshot.Snapshot
module Journal := Repro_snapshot.Journal

type mode =
  | Qemu  (** the unmodified QEMU 6.1 stand-in (baseline) *)
  | Rules of Opt.t  (** the learning-based engine *)

val mode_name : mode -> string

val mode_of_name : string -> mode option
(** Inverse of {!mode_name} over the named optimization levels
    (snapshots record the mode as a string). *)

(** {2 Degradation ladder} *)

type rung = Rung_rules | Rung_baseline | Rung_interp
    (** The watchdog's engine ladder, best to worst. [Qemu]-mode
        machines start at [Rung_baseline]; [Rules _] machines at
        [Rung_rules]. *)

val rung_name : rung -> string
(** ["rules"], ["baseline"], ["interpreter"]. *)

val rung_level : rung -> int
(** 0, 1, 2 — ordering key ([Rung_interp] is lowest/worst). *)

val rung_of_level : int -> rung
(** Inverse of {!rung_level}; raises [Snapshot.Corrupt] on anything
    else (the ["degrade"] snapshot section decodes through this). *)

type depot_state
(** Warm-boot bookkeeping for recipes loaded from a persistent depot:
    which are installed in the live cache, which are still pending
    (their guest-memory world does not exist yet) and which are dead
    for the current cache generation. See {!depot_install}. *)

type t = {
  mode : mode;
  rt : Repro_tcg.Runtime.t;
  cache : Repro_tcg.Tb.Cache.t;
  rule_translator : Translator_rule.t option;
  ruleset : Repro_rules.Ruleset.t option;
      (** the ruleset driving [rule_translator] (health state is part
          of every snapshot); [None] in [Qemu] mode *)
  mutable journal : Journal.t;
      (** events recorded since the last clean checkpoint *)
  mutable pending_resume : Repro_tcg.Engine.resume option;
      (** set by {!restore}; consumed by the next {!run} to re-enter
          the engine loop exactly where the snapshot was taken *)
  mutable last_checkpoint : Snapshot.t option;
      (** watchdog rollback target (last clean-dispatch checkpoint) *)
  mutable stop_checkpoint : Snapshot.t option;
      (** checkpoint taken when the previous run hit its instruction
          limit — what {!snapshot} returns so a saved run resumes
          bit-identically *)
  mutable rung_floor : rung;
      (** sticky degradation floor: the best engine rung this machine
          is still allowed to run. Ratchets down on watchdog
          demotions, rides in snapshots (["degrade"] section), and
          merges downward on {!restore} — prefer {!set_rung_floor} /
          {!degrade_floor} over writing it directly *)
  mutable depot : depot_state option;
      (** set by {!depot_install}; [None] means cold (no depot, or the
          depot was dropped after a semantically-poisoned recipe) *)
}

val create :
  ?ram_kib:int ->
  ?ruleset:Repro_rules.Ruleset.t ->
  ?tb_capacity:int ->
  ?inject:Repro_faultinject.Faultinject.t ->
  ?shadow_depth:int ->
  ?quarantine_threshold:int ->
  ?trace:Repro_observe.Trace.t ->
  ?ledger:Repro_observe.Ledger.t ->
  ?scope:Repro_perfscope.Scope.t ->
  mode ->
  t
(** [ruleset] defaults to the builtin set; ignored in [Qemu] mode.
    [tb_capacity] bounds the code cache (default 4096 TBs; at capacity
    the whole cache is flushed, QEMU's buffer-full policy).

    [inject] arms every fault-injection point (MMU, engine,
    translators; the bus point is armed when {!run} starts so image
    loading is never perturbed). [shadow_depth] and
    [quarantine_threshold] configure shadow verification of
    rule-translated TBs (see {!Translator_rule}); ignored in [Qemu]
    mode.

    [trace] installs a structured event ring shared by the engine,
    the timer, the softMMU helpers, the injector, the watchdog and
    the snapshot layer; its clock is retired guest instructions.
    [ledger] enables the per-pass coordination-savings attribution
    (see {!Repro_observe.Ledger}). [scope] attaches a performance
    scope (see {!Repro_perfscope.Scope}): every retired host
    instruction is attributed to a phase and guest-PC region on the
    retired-guest-insn clock, and the engine feeds the IRQ-latency,
    chain-latency and checkpoint-interval histograms. All three are
    purely observational: guest-visible behaviour and every modelled
    cost counter are bit-identical with or without them, and none
    rides in snapshots — a restored machine continues accumulating
    into whatever trace/ledger/scope it was created with. (Watchdog
    rollbacks reload [Stats] from the checkpoint but the scope keeps
    its accumulations, so under injection the scope's phase total can
    exceed the final [host_insns].) *)

val load_image : t -> Word32.t -> Word32.t array -> unit

val rung_floor : t -> rung
(** Current degradation floor (see {!type-rung}). *)

val set_rung_floor : t -> rung -> unit
(** Lower the floor to [rung] (monotone: a rung above the current
    floor is a no-op — health only ratchets down). *)

val degrade_floor : t -> bool
(** Force the floor one rung down (the supervision layer's demotion
    lever, mirroring what a watchdog livelock does internally).
    Returns [false] when already on the last rung. Flushes nothing by
    itself — the next {!run} starts on the new rung because
    translation is per-run. *)

val run :
  ?chaining:bool ->
  ?profile:Repro_tcg.Profile.t ->
  ?max_guest_insns:int ->
  ?deadline:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Snapshot.t -> unit) ->
  ?watchdog:bool ->
  ?on_postmortem:(reason:string -> Snapshot.t -> unit) ->
  t ->
  Repro_tcg.Engine.result
(** Run from the current CPU state (reset state initially), or from a
    {!restore}d resume cursor when one is pending.

    [chaining] (default true) toggles TB block chaining — the ablation
    substrate for the inter-TB experiments. [profile], when given,
    accumulates a per-TB hot-block profile (see {!Repro_tcg.Profile}).

    [deadline] (default none) is an absolute retired-guest-insn clock
    value: once [stats.guest_insns] reaches it the run stops with
    [`Deadline] — the typed per-request timeout the supervision layer
    builds on. No stop checkpoint is published (a timed-out request is
    discarded, not resumed) and the watchdog does not intervene.

    [checkpoint_every] (default 0 = off) arms periodic snapshots at
    TB boundaries, handed to [on_checkpoint]; one also fires when the
    run stops at [max_guest_insns] (retrievable via {!snapshot}).

    [watchdog] (default true): on a host-code livelock (fuel
    exhaustion in a runaway TB), roll back to the last clean
    checkpoint — one is taken at run start — bump
    [stats.livelocks_recovered], and re-execute under a degraded
    engine: rules -> baseline -> single-instruction interpreter TBs.
    A livelock on the last rung (or with the watchdog off) surfaces as
    [`Livelock]. Demotions are sticky: each one lowers {!rung_floor},
    so later runs (and snapshots taken from them) start on the
    demoted rung instead of re-trusting the engine that livelocked.

    [on_postmortem ~reason dump] fires when shadow verification
    repairs a divergence or the watchdog catches a livelock: [dump] is
    the last clean checkpoint plus the expected event journal and
    [reason] — and, when [profile] is given, a rendered hot-block
    table in the ["profile"] section — ready for {!replay} (or
    [Snapshot.save_file] and [repro-dbt-run --replay]). *)

val stats : t -> Repro_x86.Stats.t

val set_cov_static : t -> Repro_covscope.Static.t option -> unit
(** Attach/detach the coverage per-rule translation sink on the rule
    translator (no-op in [Qemu] mode). Detached automatically during
    snapshot cache rebuilds and depot passes — those re-run
    translations and must not re-record sites. *)

val cov_static : t -> Repro_covscope.Static.t option

val coverage_report : t -> Repro_covscope.Report.t
(** Build the translation-quality report (tier partition, opcode-class
    matrix, per-rule ledger, opportunity queue) over the machine's
    always-on {!Repro_x86.Stats} attribution table. Read-only: never
    perturbs execution. Raises [Failure] if the tier partition
    invariant is broken. *)

val cpu : t -> Repro_arm.Cpu.t
val journal : t -> Journal.t
val uart_output : t -> string

val set_timer : t -> period:int -> unit
(** Pre-arm the platform timer (alternative to the guest programming
    it over MMIO). *)

(** {2 Snapshots} *)

val snapshot : t -> Snapshot.t
(** The checkpoint captured when the previous run stopped at its
    instruction limit (carrying the engine resume cursor, so the
    restored run continues bit-identically), or a fresh capture of the
    current state when there is none. *)

val restore : ?rebuild:bool -> t -> Snapshot.t -> unit
(** Restore a snapshot into a machine created with the same shape
    (mode, RAM size, injector presence/behavior, ruleset). [rebuild]
    (default true) re-translates the captured live TB set to
    bit-identical host code and restores the chain graph; [false]
    just flushes the cache (the watchdog's rollback path). Raises
    [Snapshot.Corrupt] on any mismatch.

    Demotion state (PC blacklist, per-rule strikes and quarantine,
    degradation floor) {e merges} instead of replacing: restore takes
    the union of blacklists and quarantine sets, the per-rule maximum
    of strike counts, and the lower of the two rung floors, so rolling
    a machine back to an older snapshot never re-trusts a rule, PC or
    engine it has demoted since. Restoring into a fresh machine
    installs the snapshot's health verbatim (merge with empty state),
    keeping save/restore bit-identity. Shadow-verification progress is
    taken from the snapshot as-is (re-verifying is always sound). *)

val snapshot_mode : Snapshot.t -> mode
(** The mode a snapshot was taken under (to construct a matching
    machine). Raises [Snapshot.Corrupt]. *)

val snapshot_injector : Snapshot.t -> Repro_faultinject.Faultinject.t option
(** A fresh injector matching the snapshot's captured injector state,
    or [None] if the capture ran without one. *)

val snapshot_ram_kib : Snapshot.t -> int

val snapshot_clean : Snapshot.t -> bool
(** Whether the snapshot is a clean restart target: captured outside a
    run, or at an engine-dispatch boundary (the resume cursor's
    [rneeds_enter]). Mid-chain captures resume bit-identically under
    the engine that took them but carry live inter-TB host state, so
    supervision restarts (which may re-run under a degraded engine)
    must come from clean snapshots only. *)

(** {2 Deterministic replay} *)

type replay_report = {
  rep_reason : string option;  (** the dump's recorded failure reason *)
  rep_expected : Journal.event list;
      (** events the original run produced after the checkpoint *)
  rep_actual : Journal.event list;  (** events the replay produced *)
  rep_result : Repro_tcg.Engine.result;
  rep_ok : bool;
      (** the expected events are a prefix of the replayed ones —
          the failure reproduced deterministically *)
}

val replay : ?slack:int -> t -> Snapshot.t -> replay_report
(** Restore a post-mortem dump and re-execute (watchdog off) until
    [slack] guest instructions past the last expected event,
    comparing the event journals. *)

(** {2 The persistent AOT code depot}

    A {!Repro_aotcache.Depot} holds a machine's learned ruleset plus
    its translation recipes (TBs and superblocks) decoupled from any
    machine snapshot, so a fresh boot — same image, same mode — starts
    {e warm}: recipes replay into the live cache instead of being
    translated on demand, and the perfscope translate phase stays near
    zero. Unlike {!restore}, nothing architectural is touched; the
    guest-visible run is bit-identical to a cold boot.

    Because recipes re-translate from guest memory, installation is
    {e wave}-based: {!depot_install} replays whatever current memory
    supports (the MMU-off boot path), and recipes for worlds the guest
    builds later (its page tables, relocated code) stay pending until
    the first cache miss in that regime triggers another wave. Each
    wave is machine-neutral — CPU, RAM, TLB, devices, injector PRNG
    and statistics are captured and restored around it — and every
    replayed recipe must match its recorded guest-code checksum or it
    stays out of the cache.

    Every function here raises {!Repro_aotcache.Depot.Depot_error}
    (and nothing else) when the depot cannot be used; callers degrade
    to a cold start. *)

val depot_capture : t -> Repro_aotcache.Depot.t
(** Package the machine's current ruleset, live translation cache,
    per-recipe guest-code checksums and durable rule health into a
    depot (generation stamped on save). Raises on a machine demoted
    below its natural rung — degraded caches are not publishable. *)

val depot_install : t -> Repro_aotcache.Depot.t -> int
(** Verify the depot's compatibility key (mode, ruleset digest, hot
    threshold, natural rung) against this machine, ratchet in its
    durable health (union/max merge), skip quarantined (poisoned)
    entries, and run the first install wave. Call after {!load_image},
    before {!run}. Returns the number of recipes installed by the
    first wave; the rest install from miss-triggered waves during
    {!run}. Raises {!Repro_aotcache.Depot.Depot_error} on any
    incompatibility or undecodable payload, leaving the machine cold
    but unharmed. *)

val depot_coverage : t -> int * int
(** [(installed, pending)] recipe counts for the current cache
    generation; [(0, 0)] when no depot is attached. *)

val depot_poisoned : t -> int list
(** Guest PCs of depot-served TBs that shadow verification invalidated
    this process — write them back with
    {!Repro_aotcache.Depot.quarantine_pcs} + save so they never
    reload. Sorted ascending. *)

val depot_check : Repro_aotcache.Depot.t -> int * int
(** Machine-free structural verification: decode the cache recipes and
    health payload exactly as {!depot_install} would. Returns
    [(plain recipes, superblocks)]; raises
    {!Repro_aotcache.Depot.Depot_error} on damage. *)

val depot_quarantine_rules : Repro_aotcache.Depot.t -> int list -> bool
(** Fold breaker-quarantined rule ids into the depot's durable health
    section (fleet write-back). Returns [true] when the set grew and a
    save is warranted. *)
