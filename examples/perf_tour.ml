(* Performance-observatory tour: attach a perf scope and a per-TB
   profile to the same run, show the deterministic phase breakdown and
   the latency histograms, and write a collapsed-stack flamegraph.

     dune exec examples/perf_tour.exe

   Outputs (in the current directory):
     perf_tour.json    {"perf":..,"costs":..,"stats":..} — the same
                       shape `dbt_run --perf FILE` writes; feed it to
                       `repro-dbt-analyze phases` / `diff`
     perf_tour.folded  folded stacks for flamegraph.pl / inferno /
                       speedscope, weighted in host instructions

   The console walks through the three claims the observatory makes:

   1. the six phases partition host_insns *exactly* (no sampling, no
      residual bucket) — checked here with an assertion;
   2. the latency histograms (IRQ raise->deliver, TB translate->chain,
      watchdog checkpoint intervals) run on the retired-guest-insn
      clock, so they are bit-reproducible;
   3. a second same-seed run diffs against the first at 0.0% in every
      phase — the property the CI regression gate stands on. *)

module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module Perf = Repro_perfscope
module Obs = Repro_observe
module Stats = Repro_x86.Stats

let build_image () =
  let spec = W.find "gcc" in
  let user =
    W.generate spec ~iterations:(max 1 (60_000 / W.insns_per_iteration spec))
  in
  K.build ~timer_period:5_000 ~user_program:user ()

(* One scoped + profiled run; returns the stats-json document. *)
let scoped_run image =
  let scope = Perf.Scope.create () in
  let profile = T.Profile.create () in
  let sys = D.System.create ~scope (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image sys base words);
  (match
     (D.System.run ~profile ~max_guest_insns:3_000_000 ~checkpoint_every:4_000
        sys).T.Engine.reason
   with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> failwith "did not halt");
  let json =
    Obs.Jsonx.obj
      [
        ("perf", Perf.Scope.to_json scope);
        ("costs", T.Costs.to_json ());
        ("stats", Stats.to_json (D.System.stats sys));
      ]
  in
  (scope, profile, D.System.stats sys, json)

let () =
  let image = build_image () in
  let scope, profile, stats, json = scoped_run image in

  (* 1. exact partition *)
  let host = stats.Stats.host_insns in
  assert (Perf.Scope.total scope = host);
  Format.printf "phase breakdown (%d host insns, partitioned exactly):@." host;
  List.iter
    (fun ph ->
      let n = Perf.Scope.phase_count scope ph in
      Format.printf "  %-10s %9d  %5.1f%%@." (Perf.Phase.name ph) n
        (100. *. float_of_int n /. float_of_int host))
    Perf.Phase.all;

  (* 2. the three latency histograms *)
  let show name h =
    Format.printf "@.%s (guest insns): %a@." name Perf.Histo.pp h
  in
  show "IRQ raise->deliver" (Perf.Scope.irq_latency scope);
  show "TB translate->first chain" (Perf.Scope.chain_latency scope);
  show "checkpoint intervals" (Perf.Scope.checkpoint_interval scope);

  (* 3. same-seed run diffs at exactly zero *)
  let _, _, _, json2 = scoped_run image in
  let rows = Perf.Analysis.diff (Obs.Jsonx.parse json) (Obs.Jsonx.parse json2) in
  Format.printf "@.same-seed A/B diff: max |delta| = %.1f%% over %d phases@."
    (Perf.Analysis.max_abs_pct rows)
    (List.length rows);
  assert (Perf.Analysis.max_abs_pct rows = 0.);

  (* artifacts *)
  let oc = open_out "perf_tour.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  let fl = Perf.Flame.create () in
  List.iter
    (fun (e : T.Profile.entry) ->
      let base =
        [
          "rules-full";
          (if e.T.Profile.privileged then "kernel" else "user");
          K.symbolize image e.T.Profile.guest_pc;
          Printf.sprintf "tb_0x%08x" e.T.Profile.guest_pc;
        ]
      in
      let split = Array.fold_left ( + ) 0 e.T.Profile.phases in
      if split > 0 then begin
        List.iter
          (fun ph ->
            let n = e.T.Profile.phases.(Perf.Phase.index ph) in
            if n > 0 then Perf.Flame.add fl (base @ [ Perf.Phase.name ph ]) n)
          Perf.Phase.all;
        if e.T.Profile.host_spent > split then
          Perf.Flame.add fl base (e.T.Profile.host_spent - split)
      end
      else Perf.Flame.add fl base e.T.Profile.host_spent)
    (T.Profile.entries profile);
  let oc = open_out "perf_tour.folded" in
  Perf.Flame.write_folded oc fl;
  close_out oc;
  Format.printf "@.hot blocks:@.%a@."
    (T.Profile.pp_report ~top:5)
    profile;
  Format.printf "wrote perf_tour.json and perf_tour.folded@.";
  Format.printf
    "try: flamegraph.pl perf_tour.folded > perf_tour.svg@.";
  Format.printf "     repro-dbt-analyze phases perf_tour.json@."
