(* The learning pipeline, end to end on one program: compile a mini-C
   source with both compilers, extract per-line fragment pairs, verify
   them symbolically, parameterize, and finally RUN the program under
   a DBT armed only with the rules just learned.

     dune exec examples/learn_rules.exe *)

open Repro_minic.Ast
module L = Repro_learn
module D = Repro_dbt
module T = Repro_tcg
module Minic = Repro_minic
module Stats = Repro_x86.Stats

let training =
  let s line body = { line; body } in
  {
    name = "demo";
    locals = [ "x"; "y"; "acc" ];
    body =
      [
        s 1 (Assign ("x", i 12));
        s 2 (Assign ("y", (v "x" <<< 2) + i 5));
        s 3 (Assign ("acc", i 0));
        s 4
          (While
             ( Rel (Ne, v "y", i 0),
               [
                 s 5 (Assign ("acc", v "acc" + (v "y" &&& i 7)));
                 s 6 (Assign ("y", v "y" - i 1));
               ] ));
      ];
  }

let () =
  Format.printf "training source:@.%a@.@." pp_program training;

  (* 1. extraction: same source, two compilers, line-paired fragments *)
  let candidates = L.Extract.of_program training in
  Format.printf "extracted %d candidate fragment pairs, e.g.:@.%a@.@."
    (List.length candidates) L.Extract.pp_candidate (List.hd candidates);

  (* 2+3. verification and parameterization *)
  let report = L.Learn.learn ~corpus:[ training ] () in
  Format.printf "%a@.@." L.Learn.pp_report report;
  List.iter (fun r -> Format.printf "%a@." Repro_rules.Rule.pp r) report.L.Learn.rules;

  (* 4. application: run the program under the freshly-learned rules *)
  let ruleset = L.Learn.ruleset report in
  let words = Minic.Codegen_arm.compile_runnable training ~halt_with:(Some "acc") in
  let sys = D.System.create ~ruleset (D.System.Rules D.Opt.full) in
  D.System.load_image sys 0 words;
  (match (D.System.run ~max_guest_insns:500_000 sys).T.Engine.reason with
  | `Halted acc -> Format.printf "@.guest computed acc = %d under the learned rules@." acc
  | `Insn_limit | `Livelock _ | `Deadline -> Format.printf "@.guest did not halt@.");
  let s = D.System.stats sys in
  Format.printf "host/guest expansion: %.2f@." (Stats.host_per_guest s);
  match sys.D.System.rule_translator with
  | Some tr ->
    Format.printf "rule-covered guest insns (static): %d, fallbacks: %d@."
      (D.Translator_rule.stats_rule_covered tr)
      (D.Translator_rule.stats_fallback tr)
  | None -> ()
