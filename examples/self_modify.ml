(* Self-modifying guest code: the program patches one of its own
   instructions and re-executes it. The DBT must invalidate the stale
   translation (write-protected code pages + QEMU's current-TB-modified
   protocol); an emulator that kept the old translation would print the
   old value forever.

     dune exec examples/self_modify.exe *)

open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel

let patched_insn value =
  Encode.encode
    (Insn.make
       (Insn.Dp { op = Insn.MOV; s = false; rd = 0; rn = 0;
                  op2 = Insn.imm_operand_exn value }))

let user_program () =
  let a = Asm.create ~origin:K.user_code_base () in
  Asm.mov32 a Insn.sp K.user_stack_top;
  Asm.mov a 5 0;  (* pass counter *)
  Asm.label a "again";
  Asm.label a "patch";
  Asm.mov a 0 Char.(code '0');  (* the instruction we will overwrite *)
  (* print r0 *)
  Asm.mov a 7 K.sys_putchar;
  Asm.svc a 0;
  Asm.add a 5 5 1;
  Asm.cmp a 5 5;
  Asm.branch_to a ~cond:Cond.EQ "done";
  (* overwrite 'patch' with mov r0, #('0' + pass) *)
  Asm.mov32_label a 1 "patch";
  Asm.mov32 a 2 (patched_insn Char.(code '1'));
  Asm.add_r a 2 2 5;
  Asm.sub a 2 2 1;
  Asm.str a 2 1 0;
  Asm.branch_to a "again";
  Asm.label a "done";
  Asm.mov a 7 K.sys_exit;
  Asm.svc a 0;
  snd (Asm.assemble a)

let () =
  List.iter
    (fun (name, mode) ->
      let image = K.build ~user_program:(user_program ()) () in
      let sys = D.System.create mode in
      K.load image (fun base words -> D.System.load_image sys base words);
      (match (D.System.run ~max_guest_insns:1_000_000 sys).T.Engine.reason with
      | `Halted _ -> ()
      | `Insn_limit | `Livelock _ | `Deadline -> print_endline "did not halt!");
      Printf.printf "%-12s guest printed: %s\n" name (D.System.uart_output sys))
    [
      ("qemu", D.System.Qemu);
      ("rules:full", D.System.Rules D.Opt.full);
    ];
  print_endline
    "(each pass rewrites the printed digit in place: 01234 means every\n\
    \ stale translation was correctly invalidated)"
