(* Full-system demo: boot the mini guest OS — page tables, MMU,
   timer interrupts — drop to user mode, and let the user program
   print over the UART through syscalls while timer IRQs tick.

     dune exec examples/system_boot.exe *)

open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module Stats = Repro_x86.Stats

(* User program: print "HELLO DBT\n" a few times with some compute in
   between, read the kernel tick counter, exit with it. *)
let user_program () =
  let a = Asm.create ~origin:K.user_code_base () in
  Asm.mov32 a Insn.sp K.user_stack_top;
  Asm.mov a 5 8;  (* outer repeats *)
  Asm.label a "again";
  String.iter
    (fun ch ->
      Asm.mov a 0 (Char.code ch);
      Asm.mov a 7 K.sys_putchar;
      Asm.svc a 0)
    "HELLO DBT\n";
  (* busy work so timer interrupts land mid-computation *)
  Asm.mov32 a 1 4000;
  Asm.label a "spin";
  Asm.add_r a 2 2 1;
  Asm.sub a ~s:true 1 1 1;
  Asm.branch_to a ~cond:Cond.NE "spin";
  Asm.sub a ~s:true 5 5 1;
  Asm.branch_to a ~cond:Cond.NE "again";
  (* exit with the tick count *)
  Asm.mov a 7 K.sys_ticks;
  Asm.svc a 0;
  Asm.mov a 7 K.sys_exit;
  Asm.svc a 0;
  snd (Asm.assemble a)

let () =
  let image = K.build ~timer_period:2_000 ~user_program:(user_program ()) () in
  let sys = D.System.create (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res = D.System.run ~max_guest_insns:2_000_000 sys in
  let s = D.System.stats sys in
  (match res.T.Engine.reason with
  | `Halted ticks ->
    Printf.printf "guest powered off; timer ticks observed by the guest: %d\n" ticks
  | `Insn_limit | `Livelock _ | `Deadline -> print_endline "guest did not halt");
  Printf.printf "UART output from the guest:\n%s\n" (D.System.uart_output sys);
  Printf.printf "guest insns %d, host insns %d, IRQs delivered %d, TLB misses %d\n"
    s.Stats.guest_insns s.Stats.host_insns s.Stats.irqs_delivered s.Stats.tlb_misses
