(* Observability tour: run a workload with the structured trace and
   the coordination ledger attached, write the trace in both formats,
   and summarize what the instrumentation saw.

     dune exec examples/trace_explore.exe

   Outputs (in the current directory):
     trace_explore.jsonl   one event object per line + a meta trailer
     trace_explore.chrome  Chrome trace-event JSON; load it in
                           Perfetto (ui.perfetto.dev) or
                           chrome://tracing — each event category is a
                           named track, timestamps are retired guest
                           instructions

   The console report breaks the event stream down by category and
   ranks the top-3 coordination hotspots: the optimization passes
   whose absence would cost the most host instructions at run time
   (the dynamic view of the paper's Fig. 17). *)

module D = Repro_dbt
module O = Repro_observe
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads

let () =
  let spec = W.find "gcc" in
  let user =
    W.generate spec ~iterations:(max 1 (60_000 / W.insns_per_iteration spec))
  in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let trace = O.Trace.create () in
  let ledger = O.Ledger.create () in
  let sys = D.System.create ~trace ~ledger (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image sys base words);
  (match (D.System.run ~max_guest_insns:3_000_000 sys).Repro_tcg.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> failwith "did not halt");

  (* both export formats from the same ring *)
  let write path f =
    let oc = open_out path in
    f oc trace;
    close_out oc
  in
  write "trace_explore.jsonl" O.Trace.write_jsonl;
  write "trace_explore.chrome" O.Trace.write_chrome;
  Format.printf "trace: %d events (%d dropped by the ring)@."
    (O.Trace.total trace) (O.Trace.dropped trace);
  Format.printf "wrote trace_explore.jsonl and trace_explore.chrome@.@.";

  (* what kinds of events dominated? *)
  let counts = Hashtbl.create 16 in
  O.Trace.iter trace (fun e ->
      let k = O.Trace.category_name e.O.Trace.cat in
      Hashtbl.replace counts k
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)));
  Format.printf "events by category:@.";
  List.iter
    (fun cat ->
      let k = O.Trace.category_name cat in
      match Hashtbl.find_opt counts k with
      | Some n -> Format.printf "  %-9s %d@." k n
      | None -> ())
    O.Trace.categories;

  (* the dynamic Fig. 17 view, ranked *)
  Format.printf "@.%a@.@." O.Ledger.pp_report ledger;
  let ranked =
    List.sort
      (fun a b -> compare (O.Ledger.dyn_insns ledger b) (O.Ledger.dyn_insns ledger a))
      O.Ledger.passes
  in
  Format.printf "top-3 coordination hotspots (host insns saved at run time):@.";
  List.iteri
    (fun i p ->
      if i < 3 then
        Format.printf "  %d. %s (%s): %d host insns, %d sync ops@." (i + 1)
          (O.Ledger.pass_name p) (O.Ledger.pass_id p)
          (O.Ledger.dyn_insns ledger p) (O.Ledger.dyn_ops ledger p))
    ranked
