(* Two user tasks under the mini kernel's cooperative round-robin
   scheduler, run on the QEMU-style baseline and the rule-based engine.

     dune exec examples/multitask.exe

   Every yield is a complete user-context switch through the kernel —
   banked registers, SPSR, the lot — i.e. the heaviest CPU-state
   coordination traffic a guest can generate. Both engines must produce
   the same interleaving; the rule engine just gets there in fewer host
   instructions. *)

module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module Asm = Repro_arm.Asm
module Stats = Repro_x86.Stats

let putchar a ch =
  Asm.mov a 0 (Char.code ch);
  Asm.mov a 7 K.sys_putchar;
  Asm.svc a 0

let yield a =
  Asm.mov a 7 K.sys_yield;
  Asm.svc a 0

(* Task 0: prints its letter five times, yielding between, then powers
   off. *)
let task0 =
  let a = Asm.create ~origin:K.user_code_base () in
  Asm.mov32 a Repro_arm.Insn.sp K.user_stack_top;
  Asm.mov a 4 5;
  Asm.label a "loop";
  putchar a 'a';
  yield a;
  Asm.sub a ~s:true 4 4 1;
  Asm.branch_to a ~cond:Repro_arm.Cond.NE "loop";
  Asm.mov a 0 0;
  Asm.mov a 7 K.sys_exit;
  Asm.svc a 0;
  snd (Asm.assemble a)

(* Task 1: prints its digit forever (task 0's exit halts the machine). *)
let task1 =
  let a = Asm.create ~origin:K.task1_code_base () in
  Asm.label a "loop";
  putchar a '1';
  yield a;
  Asm.branch_to a "loop";
  snd (Asm.assemble a)

let run mode =
  let image = K.build ~timer_period:2_000 ~user_program2:task1 ~user_program:task0 () in
  let sys = D.System.create mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  (match (D.System.run ~max_guest_insns:1_000_000 sys).T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> failwith "did not halt");
  (D.System.uart_output sys, D.System.stats sys)

(* Preemptive variant: neither task yields; the timer forces the
   switches at arbitrary instructions. *)
let preemptive_tasks () =
  let t0 =
    let a = Asm.create ~origin:K.user_code_base () in
    Asm.mov32 a Repro_arm.Insn.sp K.user_stack_top;
    Asm.mov a 4 0;
    Asm.mov32 a 5 3_000;
    Asm.label a "loop";
    Asm.add_r a 4 4 5;
    Asm.sub a ~s:true 5 5 1;
    Asm.branch_to a ~cond:Repro_arm.Cond.NE "loop";
    Asm.mov_r a 0 4;
    Asm.mov a 7 K.sys_exit;
    Asm.svc a 0;
    snd (Asm.assemble a)
  in
  let t1 =
    let a = Asm.create ~origin:K.task1_code_base () in
    Asm.label a "spin";
    Asm.add a 6 6 1;
    Asm.branch_to a "spin";
    snd (Asm.assemble a)
  in
  (t0, t1)

let run_preemptive mode =
  let t0, t1 = preemptive_tasks () in
  let image = K.build ~timer_period:500 ~preempt:true ~user_program2:t1 ~user_program:t0 () in
  let sys = D.System.create mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let code =
    match (D.System.run ~max_guest_insns:2_000_000 sys).T.Engine.reason with
    | `Halted code -> code
    | `Insn_limit | `Livelock _ | `Deadline -> failwith "did not halt"
  in
  (code, (D.System.stats sys).Stats.irqs_delivered)

let () =
  let uart_q, stats_q = run D.System.Qemu in
  let uart_r, stats_r = run (D.System.Rules D.Opt.full) in
  assert (uart_q = uart_r);
  Format.printf "cooperative interleaving: %s@." uart_q;
  Format.printf "qemu  engine: %d host insns (%d context switches via yield)@."
    stats_q.Stats.host_insns stats_q.Stats.engine_returns;
  Format.printf "rules engine: %d host insns (%.2fx)@.@." stats_r.Stats.host_insns
    (float_of_int stats_q.Stats.host_insns /. float_of_int stats_r.Stats.host_insns);
  let expected = 3_000 * 3_001 / 2 in
  let code_q, irqs_q = run_preemptive D.System.Qemu in
  let code_r, irqs_r = run_preemptive (D.System.Rules D.Opt.full) in
  Format.printf
    "preemptive: task 0's checksum %d (expected %d) on both engines;@ %d / %d timer \
     preemptions under qemu / rules@."
    code_q expected irqs_q irqs_r;
  assert (code_q = expected && code_r = expected)
