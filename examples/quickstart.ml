(* Quickstart: assemble a small guest program, run it under the
   rule-based system-level DBT, and compare against QEMU mode.

     dune exec examples/quickstart.exe *)

open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module Bus = Repro_machine.Bus
module Stats = Repro_x86.Stats

(* Guest program: sum the integers 1..1000 through a memory cell (so
   the loop exercises the softMMU path that drives the paper's
   coordination problem), then power off with the result. *)
let program () =
  let a = Asm.create () in
  Asm.mov a 0 0;                       (* acc *)
  Asm.mov32 a 1 1000;                  (* n *)
  Asm.mov32 a 2 0x8000;                (* memory cell *)
  Asm.label a "loop";
  Asm.str a 0 2 0;
  Asm.add_r a 0 0 1;
  Asm.ldr a 3 2 0;
  Asm.sub a ~s:true 1 1 1;
  Asm.branch_to a ~cond:Cond.NE "loop";
  (* power off: store the result to the system controller *)
  Asm.mov32 a 1 Bus.syscon_base;
  Asm.str a 0 1 0;
  snd (Asm.assemble a)

let run_mode name mode words =
  let sys = D.System.create mode in
  D.System.load_image sys 0 words;
  let res = D.System.run ~max_guest_insns:1_000_000 sys in
  let s = D.System.stats sys in
  (match res.T.Engine.reason with
  | `Halted code ->
    Printf.printf "%-12s exit=%-8d guest insns=%-6d host insns=%-8d (%.2f host/guest)\n"
      name code s.Stats.guest_insns s.Stats.host_insns (Stats.host_per_guest s)
  | `Insn_limit | `Deadline -> Printf.printf "%-12s did not halt\n" name
  | `Livelock pc -> Printf.printf "%-12s livelocked at %#x\n" name pc);
  s.Stats.host_insns

let () =
  let words = program () in
  print_endline "sum(1..1000) under each engine:";
  let q = run_mode "qemu" D.System.Qemu words in
  let b = run_mode "rules:base" (D.System.Rules D.Opt.base) words in
  let f = run_mode "rules:full" (D.System.Rules D.Opt.full) words in
  Printf.printf
    "\nspeedup over qemu: unoptimized rules %.2fx, fully optimized rules %.2fx\n"
    (float_of_int q /. float_of_int b)
    (float_of_int q /. float_of_int f);
  if b > q then
    print_endline
      "(the unoptimized port is SLOWER than QEMU — the paper's motivating observation)"
