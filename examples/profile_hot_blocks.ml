(* Profile a benchmark under both engines and show where the host
   instructions actually go — the per-TB analogue of the paper's §IV-B
   per-functionality breakdown.

     dune exec examples/profile_hot_blocks.exe

   The hottest blocks are printed with their host/guest expansion; the
   rule-based engine's win shows up as the same guest blocks costing
   fewer host instructions, while the kernel's IRQ path stays equally
   hot on both engines (interrupt delivery is engine-independent). *)

module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads

let run_profiled mode =
  let spec = W.find "gcc" in
  let user = W.generate spec ~iterations:(max 1 (60_000 / W.insns_per_iteration spec)) in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let sys = D.System.create mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let profile = T.Profile.create () in
  (match (D.System.run ~profile ~max_guest_insns:3_000_000 sys).T.Engine.reason with
  | `Halted _ -> ()
  | `Insn_limit | `Livelock _ | `Deadline -> failwith "did not halt");
  profile

let () =
  let qemu = run_profiled D.System.Qemu in
  let rules = run_profiled (D.System.Rules D.Opt.full) in
  Format.printf "=== hot blocks, QEMU-mode baseline ===@.%a@.@."
    (T.Profile.pp_report ~top:8) qemu;
  Format.printf "=== hot blocks, rule-based engine (full opt) ===@.%a@.@."
    (T.Profile.pp_report ~top:8) rules;
  (* The hottest user-mode block under the rules engine, disassembled:
     this is where the learned rules do their work. *)
  (match
     List.find_opt
       (fun (e : T.Profile.entry) -> not e.T.Profile.privileged)
       (T.Profile.top ~by:`Host 100 rules)
   with
  | Some hot ->
    Format.printf "hottest user block under the rules engine:@.%a@."
      T.Profile.pp_disasm hot
  | None -> ());
  let expansion p =
    float_of_int (T.Profile.total_host p) /. float_of_int (T.Profile.total_guest p)
  in
  Format.printf "@.attributed host/guest: qemu %.2f, rules %.2f@." (expansion qemu)
    (expansion rules)
