(* Fault-injection drill: the robustness story end to end.

   1. Absorbable faults — spurious TLB/TB-cache invalidations,
      detected walk corruption, spurious interrupt assertions and
      transient bus faults at a 1/1000 rate must never change any
      benchmark's exit code, only its cost.
   2. Surfaced bus faults — the same injector with bus errors allowed
      to surface exercises the guest's abort handling; every run ends
      in a typed outcome (a halt code or the instruction limit), never
      an engine exception.
   3. A deliberately wrong translation rule — shadow verification
      catches the divergence, repairs guest state from the reference
      replay, quarantines the rule and falls back to the baseline
      translator for the affected blocks; the final exit code matches
      the reference interpreter.
   4. Sabotaged host code that spins forever — the livelock watchdog
      rolls back to the last checkpoint and re-executes under a
      degraded engine; the guest still finishes with the clean answer.
   5. Post-mortem record/replay — every watchdog recovery dumps a
      checkpoint plus the expected event journal; replaying the dump
      reproduces the recorded events deterministically.

     dune exec examples/fault_drill.exe *)

open Repro_arm
module D = Repro_dbt
module T = Repro_tcg
module K = Repro_kernel.Kernel
module W = Repro_workloads.Workloads
module R = Repro_rules
module Fi = Repro_faultinject.Faultinject
module Stats = Repro_x86.Stats

let target = 20_000
let budget = 60 * target
let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Format.printf "  FAIL: %s@." name
  end

let run_sys ?ruleset ?inject ?shadow_depth ?quarantine_threshold mode image =
  let sys = D.System.create ?ruleset ?inject ?shadow_depth ?quarantine_threshold mode in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res = D.System.run ~max_guest_insns:budget sys in
  (sys, res.T.Engine.reason)

let outcome_name = function
  | `Halted c -> Printf.sprintf "halted %#x" c
  | `Insn_limit -> "insn limit"
  | `Deadline -> "deadline"
  | `Livelock pc -> Printf.sprintf "livelock at %#x" pc

(* ---- 1. absorbable faults across every benchmark spec ---- *)

let transient_sweep () =
  Format.printf "== transient 1/1000 fault injection, all benchmarks ==@.";
  let seeds = [ 1; 2; 3 ] in
  List.iter
    (fun (spec : W.spec) ->
      let iters = max 1 (target / W.insns_per_iteration spec) in
      let user = W.generate spec ~iterations:iters in
      let image = K.build ~timer_period:5_000 ~user_program:user () in
      let _, clean = run_sys (D.System.Rules D.Opt.full) image in
      let fired =
        List.map
          (fun seed ->
            let inject = Fi.create ~seed ~rate:0.001 () in
            (* Rule corruption is exercised separately (part 3): it is
               a surfaceable fault by design, not an absorbable one. *)
            Fi.set_rate inject Fi.Rule_corrupt 0.0;
            let _, injected = run_sys ~inject (D.System.Rules D.Opt.full) image in
            check
              (Printf.sprintf "%s seed %d: %s vs clean %s" spec.W.name seed
                 (outcome_name injected) (outcome_name clean))
              (injected = clean);
            Fi.total_fired inject)
          seeds
      in
      Format.printf "  %-10s %s  faults fired: %s@." spec.W.name
        (outcome_name clean)
        (String.concat " " (List.map string_of_int fired)))
    W.cint2006

(* ---- 2. surfaced bus faults ---- *)

let surface_drill () =
  Format.printf "@.== surfaced bus faults (guest abort paths) ==@.";
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  List.iter
    (fun seed ->
      let inject = Fi.create ~seed ~rate:0. ~behavior:Fi.Surface () in
      Fi.set_rate inject Fi.Bus_read 0.0002;
      Fi.set_rate inject Fi.Bus_write 0.0002;
      let _, outcome = run_sys ~inject (D.System.Rules D.Opt.full) image in
      Format.printf "  seed %d: %s (bus faults surfaced: %d)@." seed
        (outcome_name outcome)
        (Fi.fired inject Fi.Bus_read + Fi.fired inject Fi.Bus_write))
    [ 1; 2; 3; 4; 5 ]

(* ---- 3. corrupted rule -> shadow verification -> quarantine ---- *)

(* A wrong rule for [add rd, rn, #imm]: computes rn + imm + 1. It is
   inserted ahead of the builtin set so it wins matching until shadow
   verification quarantines it. *)
let corrupt_rule =
  {
    R.Rule.id = 9999;
    name = "corrupt_add_imm";
    guest =
      [ R.Rule.G_dp { ops = [ Insn.ADD ]; s = false; rd = 0; rn = 1; op2 = R.Rule.G_imm (R.Rule.P_imm 0) } ];
    host =
      [
        R.Rule.H_mov { dst = R.Rule.H_param 0; src = R.Rule.H_param 1 };
        R.Rule.H_alu { op = `Fixed Repro_x86.Insn.Add; dst = R.Rule.H_param 0; src = R.Rule.H_imm (R.Rule.P_imm 0) };
        R.Rule.H_alu { op = `Fixed Repro_x86.Insn.Add; dst = R.Rule.H_param 0; src = R.Rule.H_imm (R.Rule.Fixed 1) };
      ];
    n_reg_params = 2;
    n_imm_params = 1;
    flags = { guest_writes = false; host_clobbers = true; convention = None };
    carry_in = None;
    require_distinct = [];
    source = `Builtin;
  }

let quarantine_drill () =
  Format.printf "@.== corrupted rule: shadow verification and quarantine ==@.";
  let user =
    let a = Asm.create ~origin:K.user_code_base () in
    Asm.mov32 a Insn.sp K.user_stack_top;
    Asm.mov a 0 5;
    Asm.mov a 6 3;
    Asm.label a "loop";
    Asm.add a 1 0 7;
    Asm.branch_to a "b1";
    Asm.label a "b1";
    Asm.add a 2 0 9;
    Asm.branch_to a "b2";
    Asm.label a "b2";
    Asm.sub ~s:true a 6 6 1;
    Asm.branch_to ~cond:Cond.NE a "loop";
    Asm.add_r a 0 1 2;
    Asm.mov a 7 K.sys_exit;
    Asm.svc a 0;
    snd (Asm.assemble a)
  in
  let image = K.build ~user_program:user () in
  (* ground truth from the reference interpreter *)
  let m = T.Ref_machine.create () in
  K.load image (fun base words -> T.Ref_machine.load_image m base words);
  let expected =
    match T.Ref_machine.run m ~max_steps:1_000_000 with
    | T.Ref_machine.Halted c, _ -> c
    | _ -> failwith "reference did not halt"
  in
  let ruleset = R.Ruleset.of_list (corrupt_rule :: R.Builtin.all ()) in
  let sys, outcome =
    run_sys ~ruleset ~shadow_depth:2 ~quarantine_threshold:2
      (D.System.Rules D.Opt.full) image
  in
  let s = D.System.stats sys in
  Format.printf
    "  reference exit %#x, system %s@.  shadow replays %d, divergences %d, \
     rules quarantined %d, baseline fallbacks %d@."
    expected (outcome_name outcome) s.Stats.shadow_replays
    s.Stats.shadow_divergences s.Stats.rules_quarantined
    s.Stats.quarantine_fallbacks;
  check "corrupted rule is quarantined" (R.Ruleset.quarantined_count ruleset = 1);
  check "exit code matches the reference" (outcome = `Halted expected);
  check "divergences were detected" (s.Stats.shadow_divergences > 0)

(* ---- 4 & 5. livelock watchdog and post-mortem replay ---- *)

let watchdog_drill () =
  Format.printf "@.== livelock watchdog and post-mortem replay ==@.";
  let spec = W.find "gcc" in
  let iters = max 1 (target / W.insns_per_iteration spec) in
  let user = W.generate spec ~iterations:iters in
  let image = K.build ~timer_period:5_000 ~user_program:user () in
  let _, clean = run_sys (D.System.Rules D.Opt.full) image in
  let inject = Fi.create ~seed:11 ~rate:0. () in
  Fi.set_rate inject Fi.Host_livelock 0.05;
  let dumps = ref [] in
  let sys = D.System.create ~inject (D.System.Rules D.Opt.full) in
  K.load image (fun base words -> D.System.load_image sys base words);
  let res =
    D.System.run ~max_guest_insns:budget ~checkpoint_every:4_000
      ~on_postmortem:(fun ~reason dump -> dumps := (reason, dump) :: !dumps)
      sys
  in
  let s = D.System.stats sys in
  (* The rollback restores the injector's PRNG and counters along with
     everything else, so the fired count reads as of the checkpoint —
     the recovery count is the engine's own tally. *)
  Format.printf "  clean %s, sabotaged %s@.  livelocks recovered %d@."
    (outcome_name clean)
    (outcome_name res.T.Engine.reason)
    s.Stats.livelocks_recovered;
  check "sabotaged run still reaches the clean answer"
    (res.T.Engine.reason = clean);
  check "watchdog recovered at least one livelock"
    (s.Stats.livelocks_recovered > 0);
  List.iteri
    (fun i (reason, dump) ->
      let rep_sys =
        D.System.create
          ~ram_kib:(D.System.snapshot_ram_kib dump)
          ?inject:(D.System.snapshot_injector dump)
          (D.System.snapshot_mode dump)
      in
      let report = D.System.replay rep_sys dump in
      Format.printf "  replaying dump %d (%s): %d expected events -> %s@." i
        reason
        (List.length report.D.System.rep_expected)
        (if report.D.System.rep_ok then "reproduced" else "MISMATCH");
      check (Printf.sprintf "dump %d replays deterministically" i)
        report.D.System.rep_ok)
    !dumps

let () =
  transient_sweep ();
  surface_drill ();
  quarantine_drill ();
  watchdog_drill ();
  if !failures = 0 then Format.printf "@.all drills passed@."
  else begin
    Format.printf "@.%d drill checks FAILED@." !failures;
    exit 1
  end
