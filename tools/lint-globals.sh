#!/usr/bin/env sh
# Fail on new top-level mutable state in lib/.
#
# Every machine instance must be fully self-contained so the fleet can
# serve across OCaml domains: a process-global ref or table is shared
# by every domain and is either a data race or a hidden determinism
# leak (DESIGN.md §19). This lint greps for column-0 `let` bindings
# that allocate mutable state — `ref`, `Hashtbl.create`, array
# constructors and literals, `Buffer.create`, `Queue.create`,
# `Stack.create` — and fails on any hit not in the allowlist below.
#
# Allowlisted entries are read-only-by-convention array literals
# (consulted, never written). If you need new module-level state,
# prefer: scope it inside the initialisation expression (see
# lib/learn/corpus.ml), derive it positionally (lib/rules/builtin.ml),
# or make it an Atomic with a comment saying who writes it
# (lib/tcg/costs.ml, lib/observe/log.ml). To extend the allowlist,
# add `file:line-prefix` here with a justification in the commit.

set -eu
cd "$(dirname "$0")/.."

allowlist='
lib/workloads/workloads.ml:let alu_targets = [|
lib/rules/pinmap.ml:let scratch = [|
lib/symexec/equiv.ml:let boundary = [|
'

pattern='^let [a-zA-Z_0-9]+ *(: *[^=]*)? *= *(ref |Hashtbl\.create|Array\.(make|init|create)|Buffer\.create|Queue\.create|Stack\.create|\[\|)'

hits=$(grep -rnE "$pattern" lib --include='*.ml' || true)

fail=0
while IFS= read -r hit; do
  [ -z "$hit" ] && continue
  file=${hit%%:*}
  rest=${hit#*:}
  decl=${rest#*:}
  allowed=0
  while IFS= read -r allow; do
    [ -z "$allow" ] && continue
    case "$file:$decl" in
      "$allow"*) allowed=1 ;;
    esac
  done <<ALLOW
$allowlist
ALLOW
  if [ "$allowed" -eq 0 ]; then
    printf 'lint-globals: top-level mutable state: %s\n' "$hit" >&2
    fail=1
  fi
done <<HITS
$hits
HITS

if [ "$fail" -ne 0 ]; then
  echo 'lint-globals: FAIL — new process-global mutable state in lib/' >&2
  echo '(thread it through, scope it, or justify an allowlist entry;' >&2
  echo ' see tools/lint-globals.sh)' >&2
  exit 1
fi
echo 'lint-globals: OK'
